package exp

import (
	"fmt"

	"vliwvp/internal/baseline"
	"vliwvp/internal/cache"
	"vliwvp/internal/profile"
	"vliwvp/internal/stats"
)

// BaselineRow compares the proposed architecture with the static
// compensation-block recovery scheme of [4] on one benchmark — the §3
// comparison the paper summarizes in prose ("the percentage of compensation
// code increased to a significant fraction of total execution time,
// compared to our scheme where this percentage was negligible").
type BaselineRow struct {
	Name string
	// CompFracBase is the fraction of baseline execution time spent in
	// compensation blocks (including branch penalties).
	CompFracBase float64
	// CompFracOurs is the fraction of our execution time lost to
	// mispredictions: cycles beyond the all-correct length of each block
	// instance (the only main-engine cost of compensation in the proposed
	// architecture; verification waits exist identically in both schemes).
	CompFracOurs float64
	// SchedRatioBase / SchedRatioOurs: measured effective schedule length
	// over original, expectation under the profiled outcome distribution.
	SchedRatioBase float64
	SchedRatioOurs float64
	// CodeGrowthInstrs is the static long-instruction count added by the
	// baseline's recovery blocks (ours adds none).
	CodeGrowthInstrs int
	// ICacheMissBase / ICacheMissOurs: instruction-cache miss rates over
	// the dynamic block-fetch trace.
	ICacheMissBase float64
	ICacheMissOurs float64
	// DynCyclesBase / DynCyclesOurs: fully dynamic end-to-end cycle counts
	// of the serial-recovery machine vs the dual-engine machine.
	DynCyclesBase int64
	DynCyclesOurs int64
}

// ICacheConfig sizes the instruction-cache model for the comparison.
type ICacheConfig struct {
	TotalWords int
	LineWords  int
	Ways       int
}

// DefaultICache is a small 2-way cache (in long-instruction words) that
// makes capacity effects visible at kernel scale.
var DefaultICache = ICacheConfig{TotalWords: 64, LineWords: 4, Ways: 2}

// CompareBaseline runs the full comparison for one prepared benchmark.
func (r *Runner) CompareBaseline(bd *BenchData, ic ICacheConfig) (BaselineRow, error) {
	row := BaselineRow{Name: bd.Bench.Name}
	bm, err := baseline.Build(bd.Res, r.D, r.DDG, baseline.DefaultConfig())
	if err != nil {
		return row, err
	}
	row.CodeGrowthInstrs = bm.CodeGrowthInstrs()

	// Cycle accounting under the profiled outcome distribution.
	var baseTotal, baseComp, oursTotal, oursRecovery float64
	var origSpec stats.WeightedMean
	for bk, blk := range bd.Blocks {
		best, err := blk.Result(blk.FullMask())
		if err != nil {
			return row, err
		}
		for mask, n := range bd.Out.MaskCounts[bk] {
			w := float64(n)
			baseTotal += w * float64(bm.EffectiveLength(bk, mask))
			baseComp += w * float64(bm.CompCycles(bk, mask))
			res, err := blk.Result(mask)
			if err != nil {
				return row, err
			}
			oursTotal += w * float64(res.Length)
			if d := res.Length - best.Length; d > 0 {
				oursRecovery += w * float64(d)
			}
			origSpec.Add(float64(blk.OrigLen), w)
		}
	}
	// Non-speculated execution time is identical in both machines; include
	// it so fractions are of TOTAL time, as the paper reports.
	rest := bd.TotalTime - origSpec.Mean()*origSpec.Weight()
	if rest < 0 {
		rest = 0
	}
	if t := baseTotal + rest; t > 0 {
		row.CompFracBase = baseComp / t
	}
	if t := oursTotal + rest; t > 0 {
		row.CompFracOurs = oursRecovery / t
	}
	if w := origSpec.Mean() * origSpec.Weight(); w > 0 {
		row.SchedRatioBase = baseTotal / w
		row.SchedRatioOurs = oursTotal / w
	}

	// Instruction-cache study: replay the dynamic block trace through the
	// cache model under both code layouts. The baseline layout appends
	// every recovery block after its function; on a misprediction the
	// recovery block is fetched too.
	missBase, missOurs, err := r.icacheStudy(bd, bm, ic)
	if err != nil {
		return row, err
	}
	row.ICacheMissBase = missBase
	row.ICacheMissOurs = missOurs
	return row, nil
}

// layout assigns instruction-word addresses to blocks.
type layout struct {
	addr map[profile.BlockKey]int64
	size map[profile.BlockKey]int
	// recovery block addresses per block, per site index (baseline only).
	recAddr map[profile.BlockKey][]int64
	recSize map[profile.BlockKey][]int
	total   int64
}

// buildLayout lays out every function's blocks sequentially; when bm is
// non-nil, recovery blocks follow their function's code.
func (r *Runner) buildLayout(bd *BenchData, bm *baseline.Model) *layout {
	l := &layout{
		addr:    map[profile.BlockKey]int64{},
		size:    map[profile.BlockKey]int{},
		recAddr: map[profile.BlockKey][]int64{},
		recSize: map[profile.BlockKey][]int{},
	}
	var a int64
	for _, f := range bd.Res.Prog.Funcs {
		var fblocks []profile.BlockKey
		for _, blk := range f.Blocks {
			bk := profile.BlockKey{Func: f.Name, Block: blk.ID}
			var words int
			if bdat := bd.Blocks[bk]; bdat != nil {
				words = bdat.Sched.Length()
			} else {
				words = bd.OrigLen(bk)
			}
			if words == 0 {
				words = 1
			}
			l.addr[bk] = a
			l.size[bk] = words
			a += int64(words)
			fblocks = append(fblocks, bk)
		}
		if bm != nil {
			for _, bk := range fblocks {
				bmm := bm.Blocks[bk]
				if bmm == nil {
					continue
				}
				for _, rl := range bmm.RecoveryLen {
					l.recAddr[bk] = append(l.recAddr[bk], a)
					l.recSize[bk] = append(l.recSize[bk], rl)
					a += int64(rl)
				}
			}
		}
	}
	l.total = a
	return l
}

// icacheStudy replays the block-fetch trace under both layouts.
func (r *Runner) icacheStudy(bd *BenchData, bm *baseline.Model, ic ICacheConfig) (base, ours float64, err error) {
	ourLayout := r.buildLayout(bd, nil)
	baseLayout := r.buildLayout(bd, bm)

	ourCache, err := cache.New(ic.TotalWords, ic.LineWords, ic.Ways)
	if err != nil {
		return 0, 0, err
	}
	baseCache, err := cache.New(ic.TotalWords, ic.LineWords, ic.Ways)
	if err != nil {
		return 0, 0, err
	}

	hooks := profile.OutcomeHooks{
		OnBlock: func(bk profile.BlockKey) {
			ourCache.AccessRange(ourLayout.addr[bk], ourLayout.size[bk])
			baseCache.AccessRange(baseLayout.addr[bk], baseLayout.size[bk])
		},
		OnInstance: func(bk profile.BlockKey, mask uint32, numSel int) {
			// Baseline fetches each mispredicted site's recovery block.
			for i := 0; i < numSel; i++ {
				if mask&(1<<uint(i)) != 0 {
					continue
				}
				if i < len(baseLayout.recAddr[bk]) {
					baseCache.AccessRange(baseLayout.recAddr[bk][i], baseLayout.recSize[bk][i])
				}
			}
		},
	}
	if err := profile.StreamOutcomes(bd.Prog, bd.Res.Selection, "main", hooks); err != nil {
		return 0, 0, err
	}
	return baseCache.MissRate(), ourCache.MissRate(), nil
}

// RenderBaseline runs the comparison for every benchmark, including the
// fully dynamic end-to-end cycle counts of both machines (the serial
// [4]-style machine and the proposed dual-engine one, both validated
// against the sequential interpreter). Benchmarks fan across the runner's
// worker pool; rows aggregate in input order.
func RenderBaseline(r *Runner, ic ICacheConfig) (*stats.Table, []BaselineRow, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Comparison with static compensation blocks [4] (%s)", r.D.Name),
		Headers: []string{"Benchmark", "Comp% [4]", "Comp% ours", "Sched [4]", "Sched ours",
			"Code growth", "I$ miss [4]", "I$ miss ours", "Cycles [4]", "Cycles ours"},
	}
	rows := make([]BaselineRow, len(r.Benchmarks))
	err := r.forEach(len(r.Benchmarks), func(i int) error {
		b := r.Benchmarks[i]
		bd, err := r.Prepare(b)
		if err != nil {
			return err
		}
		row, err := r.CompareBaseline(bd, ic)
		if err != nil {
			return err
		}
		serial, err := r.SpeedupSerial(b)
		if err != nil {
			return err
		}
		ours, err := r.Speedup(b)
		if err != nil {
			return err
		}
		row.DynCyclesBase = serial.SpecCycles
		row.DynCyclesOurs = ours.SpecCycles
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, row := range rows {
		t.AddRow(row.Name, stats.Pct(row.CompFracBase), stats.Pct(row.CompFracOurs),
			stats.F(row.SchedRatioBase), stats.F(row.SchedRatioOurs),
			fmt.Sprintf("%d", row.CodeGrowthInstrs),
			stats.Pct(row.ICacheMissBase), stats.Pct(row.ICacheMissOurs),
			fmt.Sprintf("%d", row.DynCyclesBase), fmt.Sprintf("%d", row.DynCyclesOurs))
	}
	return t, rows, nil
}
