package exp

import (
	"fmt"

	"vliwvp/internal/machine"
	"vliwvp/internal/pool"
	"vliwvp/internal/stats"
)

// RenderMemLatAblation generalises the paper's Fig. 10 (speedup vs load
// latency): instead of scaling one flat latency it sweeps the stock
// memory hierarchies — flat, L1, L1+prefetch, L2, L2+prefetch — and
// reports how the value-prediction benefit moves as the effective miss
// latency grows. Both runs in every cell share one compiled product
// (hierarchies are sim-time-only); only the baseline run re-simulates
// per hierarchy. Architectural results stay pinned to the interpreter,
// so any divergence here is a timing-model bug, not noise.
func RenderMemLatAblation(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Generalised Fig. 10: value-prediction benefit vs memory hierarchy (%s)", d.Name),
		Headers: []string{"Hierarchy", "Base cycles", "Spec cycles", "Speedup",
			"D-misses", "I-misses", "Useful prefetches"},
	}
	mems := machine.StockMem()
	runners := make([]*Runner, len(mems))
	for i, m := range mems {
		runners[i] = NewRunner(d)
		runners[i].Mem = m
	}
	nb := len(runners[0].Benchmarks)
	cells := make([]SpeedupRow, len(mems)*nb)
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		r, w := runners[i/nb], runners[i/nb].Benchmarks[i%nb]
		row, err := r.Speedup(w)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", mems[i/nb].Name, w.Name, err)
		}
		cells[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	for mi, m := range mems {
		var base, spec, dmiss, imiss, pfUse int64
		for bi := 0; bi < nb; bi++ {
			c := cells[mi*nb+bi]
			base += c.BaseCycles
			spec += c.SpecCycles
			dmiss += c.DMisses
			imiss += c.IMisses
			pfUse += c.PrefUseful
		}
		speedup := 0.0
		if spec > 0 {
			speedup = float64(base) / float64(spec)
		}
		t.AddRow(m.Name, fmt.Sprintf("%d", base), fmt.Sprintf("%d", spec),
			fmt.Sprintf("%.3fx", speedup),
			fmt.Sprintf("%d", dmiss), fmt.Sprintf("%d", imiss), fmt.Sprintf("%d", pfUse))
	}
	return t, nil
}
