package exp

// Exported cache hooks for the serving layer (internal/serve). The daemon
// compiles arbitrary programs through the same per-pass pipeline cache the
// experiment drivers share, so concurrent identical requests coalesce onto
// one compile (cache single-flight) and repeat requests are pure lookups.
// Everything a request needs downstream of compilation — the decoded
// image, per-site predictor schemes, the rendered schedule — is one cache
// entry under the cumulative pass-fingerprint key CompiledKey reports.

import (
	"fmt"
	"strings"

	"vliwvp/internal/core"
	"vliwvp/internal/ir"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/workload"
)

// CompiledPrefix prefixes every compiled-product cache key; cache hooks
// use it to tell compile entries from pass-level and helper entries.
const CompiledPrefix = "img|"

// Compiled is the cached product of the full speculative compile of one
// benchmark under one runner configuration: the decoded execution image,
// the per-site predictor schemes, and the rendered whole-program schedule.
// All fields are immutable and shared across goroutines — any number of
// simulators or batches bind to one image.
type Compiled struct {
	Img     *core.Image
	Schemes map[int]profile.Scheme
	// Schedule is the human-readable whole-program VLIW schedule (one
	// line per long instruction with its wait mask), rendered once at
	// compile time so serving it costs a cache lookup.
	Schedule string
}

// Compiled returns the benchmark's compiled product under the runner's
// configuration, served from the pipeline cache: concurrent callers with
// the same key block on one compilation (single-flight), later callers
// get a pure lookup.
func (r *Runner) Compiled(b *workload.Benchmark) (*Compiled, error) {
	return r.specImageFor(b)
}

// CompiledKey is the cache key Compiled products live under: the
// cumulative per-pass fingerprint of the front-end plan plus every
// SpecPlan pass (speculation config, DDG options, image format version)
// plus the machine description. Two requests agreeing on this key are the
// same compile.
func (r *Runner) CompiledKey(b *workload.Benchmark) string {
	pl := r.SpecPlan()
	return fmt.Sprintf("%s%s|d=%+v", CompiledPrefix, pl.Key(r.frontKey(b), len(pl.Passes)), *r.D)
}

// CacheLen reports how many entries the runner's pipeline cache holds
// (serving-layer cache-budget accounting).
func (r *Runner) CacheLen() int { return r.cacheFor().Len() }

// FlushCache drops every entry from the runner's pipeline cache (the
// serving layer's crude-but-bounded answer to cold-plan cache growth).
func (r *Runner) FlushCache() { r.cacheFor().Flush() }

// RenderSchedule renders a whole-program schedule in the fixture format
// the golden-equivalence suite pins: per function, per block, one line per
// long instruction with its Synchronization wait mask and bracketed ops.
func RenderSchedule(prog *ir.Program, ps *sched.ProgSched) string {
	if prog == nil || ps == nil {
		return ""
	}
	var sb strings.Builder
	for _, f := range prog.Funcs {
		fs := ps.Funcs[f.Name]
		if fs == nil {
			continue
		}
		fmt.Fprintf(&sb, "func %s\n", f.Name)
		for i, bs := range fs.Blocks {
			fmt.Fprintf(&sb, "b%d len=%d\n", i, bs.Length())
			for c, in := range bs.Instrs {
				fmt.Fprintf(&sb, "  c%d wait=%#x:", c, in.WaitBits)
				for _, op := range in.Ops {
					fmt.Fprintf(&sb, " [%s]", op)
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String()
}
