package exp

import (
	"fmt"
	"math"

	"vliwvp/internal/baseline"
	"vliwvp/internal/core"
	"vliwvp/internal/ir"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/stats"
	"vliwvp/internal/workload"
)

// SpeedupRow is one benchmark's end-to-end dynamic result: the whole
// program executed on the dual-engine machine with live predictor tables,
// against the same program without value speculation (E7 / the paper's
// headline speedup claim).
type SpeedupRow struct {
	Name        string
	BaseCycles  int64
	SpecCycles  int64
	Speedup     float64
	Predictions int64
	Mispredicts int64
	// Suppressed and SuppressedWrong are the confidence gate's counters
	// (zero when the runner's predictor config leaves gating off).
	Suppressed      int64
	SuppressedWrong int64
	CCEExecuted     int64
	CCEFlushed      int64
	StallSync       int64
	// Control-speculation counters from the speculative run (zero unless
	// the runner's ControlConfig binds a dynamic branch predictor).
	BranchPredicts    int64
	BranchMispredicts int64
	BranchFlushed     int64
	StallRedirect     int64
	// Memory-hierarchy counters from the speculative run (all zero under
	// the flat model).
	DMisses    int64
	IMisses    int64
	PrefUseful int64
}

// scheduleAll builds validated schedules for a whole program via the
// schedule plan and decodes them into the simulator image.
func (r *Runner) scheduleAll(prog *ir.Program) (*core.Image, error) {
	ctx := &pipeline.Ctx{Prog: prog, Machine: r.D, Shared: true}
	if err := r.manager().Run(r.SchedulePlan(), ctx); err != nil {
		return nil, err
	}
	return ctx.Image, nil
}

// newSim binds a dual-engine simulator to a decoded image with the
// runner's configuration applied.
func (r *Runner) newSim(img *core.Image, schemes map[int]profile.Scheme) *core.Simulator {
	sim := core.NewSimulatorFromImage(img, schemes)
	if r.CCBCapacity > 0 {
		sim.CCBCapacity = r.CCBCapacity
	}
	sim.MemCfg = r.Mem
	sim.PredCfg = r.Cfg.Predictor
	sim.Control = r.Cfg.Control
	return sim
}

// NewSimulatorFor wires a dual-engine simulator for an arbitrary program
// (transformed or not).
func (r *Runner) NewSimulatorFor(prog *ir.Program, schemes map[int]profile.Scheme) (*core.Simulator, error) {
	img, err := r.scheduleAll(prog)
	if err != nil {
		return nil, err
	}
	return r.newSim(img, schemes), nil
}

// specRun executes the speculate+schedule suffix over a benchmark's cached
// front end.
func (r *Runner) specRun(b *workload.Benchmark) (*pipeline.Ctx, error) {
	fe, err := r.frontEndFor(b)
	if err != nil {
		return nil, err
	}
	ctx := &pipeline.Ctx{Prog: fe.Prog, Prof: fe.Prof, Machine: r.D, Shared: true}
	if err := r.manager().Run(r.SpecPlan(), ctx); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return ctx, nil
}

// SpecSim wires the speculative (transformed) dual-engine simulator for
// one benchmark, with per-site predictor schemes attached — the simulator
// the speedup experiment, the vpexp trace/stats modes, and the bench grid
// all run.
func (r *Runner) SpecSim(b *workload.Benchmark) (*core.Simulator, error) {
	si, err := r.specImageFor(b)
	if err != nil {
		return nil, err
	}
	return r.newSim(si.Img, si.Schemes), nil
}

// SpecSchedule runs the full compile flow for one benchmark — front end,
// speculation, whole-program scheduling — and returns the speculated
// program's schedules together with the transform result. It is the entry
// point the golden-equivalence suite pins: its output must stay byte-stable
// across refactors of the pipeline plumbing.
func (r *Runner) SpecSchedule(b *workload.Benchmark) (*sched.ProgSched, *speculate.Result, error) {
	ctx, err := r.specRun(b)
	if err != nil {
		return nil, nil, err
	}
	return ctx.Sched, ctx.Spec, nil
}

// Speedup runs one benchmark end to end both ways. The baseline run comes
// from the pipeline cache (validated against the sequential interpreter
// when first computed); the speculative run is validated against it.
func (r *Runner) Speedup(b *workload.Benchmark) (SpeedupRow, error) {
	row := SpeedupRow{Name: b.Name}
	fe, err := r.frontEndFor(b)
	if err != nil {
		return row, err
	}
	base, err := r.baseRunFor(b, fe)
	if err != nil {
		return row, err
	}
	specSim, err := r.SpecSim(b)
	if err != nil {
		return row, err
	}
	specV, err := specSim.Run("main")
	if err != nil {
		return row, fmt.Errorf("%s speculative sim: %w", b.Name, err)
	}
	if base.Value != specV {
		return row, fmt.Errorf("%s: speculative result %d != baseline %d", b.Name, specV, base.Value)
	}

	row.BaseCycles = base.Cycles
	row.SpecCycles = specSim.Cycles
	if specSim.Cycles > 0 {
		row.Speedup = float64(base.Cycles) / float64(specSim.Cycles)
	}
	row.Predictions = specSim.Predictions
	row.Mispredicts = specSim.Mispredicts
	row.Suppressed = specSim.Suppressed
	row.SuppressedWrong = specSim.SuppressedWrong
	row.CCEExecuted = specSim.CCEExecuted
	row.CCEFlushed = specSim.CCEFlushed
	row.StallSync = specSim.StallSync
	row.BranchPredicts = specSim.BranchPredicts
	row.BranchMispredicts = specSim.BranchMispredicts
	row.BranchFlushed = specSim.BranchFlushed
	row.StallRedirect = specSim.StallRedirect
	row.DMisses = specSim.DMisses
	row.IMisses = specSim.IMisses
	row.PrefUseful = specSim.PrefUseful
	return row, nil
}

// SpeedupSerial runs one benchmark end to end on the serial-recovery
// baseline machine ([4]: static compensation blocks, no Compensation Code
// Engine) and returns its cycle count, validated against the interpreter.
func (r *Runner) SpeedupSerial(b *workload.Benchmark) (SpeedupRow, error) {
	row := SpeedupRow{Name: b.Name}
	fe, err := r.frontEndFor(b)
	if err != nil {
		return row, err
	}
	ctx, err := r.specRun(b)
	if err != nil {
		return row, err
	}
	res := ctx.Spec
	bm, err := baseline.Build(res, r.D, r.DDG, baseline.DefaultConfig())
	if err != nil {
		return row, err
	}
	recLen := map[int]int{}
	for bk, info := range res.Blocks {
		bmB := bm.Blocks[bk]
		for i, sid := range info.SiteIDs {
			if bmB != nil && i < len(bmB.RecoveryLen) {
				recLen[sid] = bmB.RecoveryLen[i]
			}
		}
	}
	if ctx.Image == nil {
		return row, fmt.Errorf("%s: spec plan produced no image", b.Name)
	}
	sim := r.newSim(ctx.Image, ctx.Schemes)
	sim.SerialRecovery = true
	sim.RecoveryLen = recLen
	sim.Control = baseline.DefaultConfig()
	got, err := sim.Run("main")
	if err != nil {
		return row, fmt.Errorf("%s serial baseline sim: %w", b.Name, err)
	}
	want, err := r.interpRunFor(b, fe)
	if err != nil {
		return row, err
	}
	if got != want {
		return row, fmt.Errorf("%s: serial baseline result %d != %d", b.Name, got, want)
	}
	row.SpecCycles = sim.Cycles
	row.Predictions = sim.Predictions
	row.Mispredicts = sim.Mispredicts
	row.CCEExecuted = sim.CCEExecuted
	row.CCEFlushed = sim.CCEFlushed
	row.StallSync = sim.StallSync
	return row, nil
}

// RenderSpeedup runs the dynamic speedup experiment for every benchmark,
// fanned across the runner's worker pool; rows aggregate in input order.
func RenderSpeedup(r *Runner) (*stats.Table, []SpeedupRow, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Dynamic dual-engine speedup (%s)", r.D.Name),
		Headers: []string{"Benchmark", "Base cycles", "Spec cycles", "Speedup",
			"Preds", "Mispred", "CCE exec", "CCE flush"},
	}
	rows := make([]SpeedupRow, len(r.Benchmarks))
	err := r.forEach(len(r.Benchmarks), func(i int) error {
		row, err := r.Speedup(r.Benchmarks[i])
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	var geo float64 = 1
	for _, row := range rows {
		geo *= row.Speedup
		t.AddRow(row.Name,
			fmt.Sprintf("%d", row.BaseCycles), fmt.Sprintf("%d", row.SpecCycles),
			fmt.Sprintf("%.3f", row.Speedup),
			fmt.Sprintf("%d", row.Predictions), fmt.Sprintf("%d", row.Mispredicts),
			fmt.Sprintf("%d", row.CCEExecuted), fmt.Sprintf("%d", row.CCEFlushed))
	}
	if len(rows) > 0 {
		geo = math.Pow(geo, 1/float64(len(rows)))
		t.AddRow("geomean", "", "", fmt.Sprintf("%.3f", geo), "", "", "", "")
	}
	return t, rows, nil
}
