package exp

import (
	"fmt"

	"vliwvp/internal/machine"
	"vliwvp/internal/pool"
	"vliwvp/internal/predict"
	"vliwvp/internal/stats"
)

// combinedBranch is the control-speculation axis of the combined ablation:
// the abstract flat-penalty machine ("static", the pre-refactor model) and
// the three dynamic direction-predictor families. Dynamic specs are parsed
// with predict.ParseBranch, so the table doubles as a grammar check.
var combinedBranch = []string{"static", "taken", "bimodal", "tage"}

// combinedValue is the value-speculation axis: the paper's per-site
// profiled selection and the strongest hardware scheme with the runtime
// confidence gate on.
var combinedValue = []string{"profiled", "vtage:conf=2"}

// combinedControl maps a branch-axis spec to its ControlConfig. "static"
// is the paper's serial-recovery setting (one-cycle taken-branch penalty,
// no modeled predictor); everything else binds a dynamic predictor with
// the default redirect/flush latencies.
func combinedControl(spec string) (machine.ControlConfig, error) {
	if spec == "static" {
		return machine.DefaultControl(), nil
	}
	bc, err := predict.ParseBranch(spec)
	if err != nil {
		return machine.ControlConfig{}, fmt.Errorf("branch spec %q: %w", spec, err)
	}
	return machine.ControlConfig{Branch: bc}, nil
}

// RenderCombined runs the unified control+value speculation ablation: the
// cross product of branch-prediction configurations and value-predictor
// configurations, each cell a full end-to-end benchmark run on the
// dual-engine machine. Per row: the dynamic branch predictor's lookups,
// misses, and accuracy, the in-flight LdPred/CCB state flushed by
// mispredicted branches (zero by construction on the static rows), and
// the whole-program speedup over the unspeculated baseline compiled under
// the same control model. Baselines are shared per control config through
// the pipeline cache; each "(all)" row aggregates its configuration pair
// with a cycle-weighted speedup.
func RenderCombined(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation: combined branch x value speculation (%s)", d.Name),
		Headers: []string{"Branch", "Value", "Benchmark", "BrPreds", "BrMispred",
			"BrAcc", "Flushes", "Mispred", "Speedup"},
	}
	type pair struct {
		branch, value string
	}
	pairs := make([]pair, 0, len(combinedBranch)*len(combinedValue))
	for _, bs := range combinedBranch {
		for _, vs := range combinedValue {
			pairs = append(pairs, pair{bs, vs})
		}
	}
	runners := make([]*Runner, len(pairs))
	for i, p := range pairs {
		ctrl, err := combinedControl(p.branch)
		if err != nil {
			return nil, err
		}
		vcfg, err := predict.Parse(p.value)
		if err != nil {
			return nil, fmt.Errorf("value spec %q: %w", p.value, err)
		}
		runners[i] = NewRunner(d)
		runners[i].Cfg.Control = ctrl
		runners[i].Cfg.Predictor = vcfg
	}
	nb := len(runners[0].Benchmarks)
	cells := make([]SpeedupRow, len(pairs)*nb)
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		r, b := runners[i/nb], runners[i/nb].Benchmarks[i%nb]
		row, err := r.Speedup(b)
		if err != nil {
			return fmt.Errorf("%s/%s/%s: %w", pairs[i/nb].branch, pairs[i/nb].value, b.Name, err)
		}
		cells[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	ratio := func(num, den int64) string {
		if den == 0 {
			return "-"
		}
		return stats.Pct(float64(num) / float64(den))
	}
	for pi, p := range pairs {
		var sum SpeedupRow
		for bi := 0; bi < nb; bi++ {
			c := cells[pi*nb+bi]
			sum.BaseCycles += c.BaseCycles
			sum.SpecCycles += c.SpecCycles
			sum.BranchPredicts += c.BranchPredicts
			sum.BranchMispredicts += c.BranchMispredicts
			sum.BranchFlushed += c.BranchFlushed
			sum.Mispredicts += c.Mispredicts
			t.AddRow(p.branch, p.value, c.Name,
				fmt.Sprintf("%d", c.BranchPredicts), fmt.Sprintf("%d", c.BranchMispredicts),
				ratio(c.BranchPredicts-c.BranchMispredicts, c.BranchPredicts),
				fmt.Sprintf("%d", c.BranchFlushed), fmt.Sprintf("%d", c.Mispredicts),
				fmt.Sprintf("%.3f", c.Speedup))
		}
		speedup := 0.0
		if sum.SpecCycles > 0 {
			speedup = float64(sum.BaseCycles) / float64(sum.SpecCycles)
		}
		t.AddRow(p.branch, p.value, "(all)",
			fmt.Sprintf("%d", sum.BranchPredicts), fmt.Sprintf("%d", sum.BranchMispredicts),
			ratio(sum.BranchPredicts-sum.BranchMispredicts, sum.BranchPredicts),
			fmt.Sprintf("%d", sum.BranchFlushed), fmt.Sprintf("%d", sum.Mispredicts),
			fmt.Sprintf("%.3f", speedup))
	}
	return t, nil
}
