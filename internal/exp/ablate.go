package exp

import (
	"fmt"
	"math"

	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/stats"
	"vliwvp/internal/workload"
)

// This file holds the ablation studies around the design choices DESIGN.md
// calls out: the 65% selection threshold, the max(stride, FCM) hybrid
// profile, the CCB size, the conservative memory dependences, and the
// superblock region-formation extension.

// thresholdPoints are the selection thresholds swept (the paper keeps 0.65
// "fairly low ... to analyze the misprediction cases as well").
var thresholdPoints = []float64{0.50, 0.65, 0.80, 0.95}

// RenderThresholdSweep reports, per threshold, the number of selected
// sites, the all-benchmark average best-case and measured schedule ratios,
// and the misprediction share — the aggressiveness trade-off behind the
// paper's threshold choice.
func RenderThresholdSweep(d *machine.Desc) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: load-selection threshold (%s)", d.Name),
		Headers: []string{"Threshold", "Sites", "Best ratio", "Measured ratio", "Mispredict share"},
	}
	for _, th := range thresholdPoints {
		r := NewRunner(d)
		r.Cfg.Threshold = th
		sites := 0
		var best, measured stats.WeightedMean
		var preds, miss float64
		for _, w := range r.Benchmarks {
			bd, err := r.Prepare(w)
			if err != nil {
				return nil, err
			}
			sites += len(bd.Res.Sites)
			row, err := Table3(bd)
			if err != nil {
				return nil, err
			}
			best.Add(row.Best, 1)
			measured.Add(row.Measured, 1)
			p, m := mispredictShare(bd)
			preds += p
			miss += m
		}
		share := 0.0
		if preds > 0 {
			share = miss / preds
		}
		t.AddRow(fmt.Sprintf("%.2f", th), fmt.Sprintf("%d", sites),
			stats.F(best.Mean()), stats.F(measured.Mean()), stats.Pct(share))
	}
	return t, nil
}

// mispredictShare counts profiled predictions and mispredictions.
func mispredictShare(bd *BenchData) (preds, miss float64) {
	for bk, blk := range bd.Blocks {
		for mask, n := range bd.Out.MaskCounts[bk] {
			w := float64(n)
			for i := 0; i < blk.NumSites; i++ {
				preds += w
				if mask&(1<<uint(i)) == 0 {
					miss += w
				}
			}
		}
	}
	return preds, miss
}

// RenderPredictorAblation compares selection and schedule quality when the
// profile may use only stride, only FCM, or the paper's max of both.
func RenderPredictorAblation(d *machine.Desc) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: profiling predictor family (%s)", d.Name),
		Headers: []string{"Profile", "Sites", "Best ratio", "Measured ratio"},
	}
	families := []struct {
		name string
		mask func(lp *profile.LoadProfile)
	}{
		{"stride only", func(lp *profile.LoadProfile) { lp.FCMRate = 0 }},
		{"fcm only", func(lp *profile.LoadProfile) { lp.StrideRate = 0 }},
		{"max(stride,fcm)", func(lp *profile.LoadProfile) {}},
	}
	for _, fam := range families {
		r := NewRunner(d)
		sites := 0
		var best, measured stats.WeightedMean
		for _, w := range r.Benchmarks {
			prog, err := w.Compile()
			if err != nil {
				return nil, err
			}
			prof, err := profile.Collect(prog, "main")
			if err != nil {
				return nil, err
			}
			for _, lp := range prof.Loads {
				fam.mask(lp)
			}
			bd, err := r.PrepareWithProfile(w, prog, prof)
			if err != nil {
				return nil, err
			}
			sites += len(bd.Res.Sites)
			row, err := Table3(bd)
			if err != nil {
				return nil, err
			}
			best.Add(row.Best, 1)
			measured.Add(row.Measured, 1)
		}
		t.AddRow(fam.name, fmt.Sprintf("%d", sites), stats.F(best.Mean()), stats.F(measured.Mean()))
	}
	return t, nil
}

// ccbPoints are the Compensation Code Buffer capacities swept. The
// Synchronization-bit budget is co-designed to the buffer size (a window of
// speculative issues larger than the buffer would wedge the in-order
// engines, so the compiler must not create one).
var ccbPoints = []int{4, 8, 16, DefaultCCBPoint}

// DefaultCCBPoint mirrors core.DefaultCCBCapacity without importing it into
// the table labels.
const DefaultCCBPoint = 64

// RenderCCBSweep reports end-to-end dynamic cycles as the CCB (and the
// co-designed Synchronization-bit budget) shrinks. Dynamic totals keep the
// comparison population fixed across rows: with a shrinking bit budget the
// set of speculated blocks changes, so per-block ratios would compare
// different block populations.
func RenderCCBSweep(d *machine.Desc) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: Compensation Code Buffer capacity + bit budget (%s)", d.Name),
		Headers: []string{"CCB entries", "Total spec cycles", "Sites", "vs full buffer"},
	}
	totals := make([]int64, len(ccbPoints))
	sites := make([]int, len(ccbPoints))
	for i, c := range ccbPoints {
		r := NewRunner(d)
		r.CCBCapacity = c
		r.Cfg.MaxSyncBits = c
		for _, w := range r.Benchmarks {
			row, err := r.Speedup(w)
			if err != nil {
				return nil, err
			}
			totals[i] += row.SpecCycles
			bd, err := r.Prepare(w)
			if err != nil {
				return nil, err
			}
			sites[i] += len(bd.Res.Sites)
		}
	}
	full := totals[len(totals)-1]
	for i, c := range ccbPoints {
		rel := float64(totals[i]) / float64(full)
		t.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", totals[i]),
			fmt.Sprintf("%d", sites[i]), fmt.Sprintf("%.3f", rel))
	}
	return t, nil
}

// RenderRegionAblation compares basic blocks against superblock-formed
// regions — the paper's "larger regions" expectation. The comparison runs
// end to end: per-block ratios hide the cycles that region formation saves
// by deleting block boundaries, so the columns are dynamic dual-engine
// cycle counts (both validated against the sequential interpreter).
func RenderRegionAblation(d *machine.Desc) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Extension: superblock region formation (%s)", d.Name),
		Headers: []string{"Benchmark", "Spec cycles (blocks)", "Spec cycles (regions)",
			"Region gain", "Sites (blocks)", "Sites (regions)"},
	}
	base := NewRunner(d)
	reg := NewRunner(d)
	reg.Regions = true
	var geo float64 = 1
	n := 0
	for _, w := range workload.All() {
		rowB, err := base.Speedup(w)
		if err != nil {
			return nil, err
		}
		rowR, err := reg.Speedup(w)
		if err != nil {
			return nil, err
		}
		bdB, err := base.Prepare(w)
		if err != nil {
			return nil, err
		}
		bdR, err := reg.Prepare(w)
		if err != nil {
			return nil, err
		}
		gain := float64(rowB.SpecCycles) / float64(rowR.SpecCycles)
		geo *= gain
		n++
		t.AddRow(w.Name,
			fmt.Sprintf("%d", rowB.SpecCycles), fmt.Sprintf("%d", rowR.SpecCycles),
			fmt.Sprintf("%.3fx", gain),
			fmt.Sprintf("%d", len(bdB.Res.Sites)), fmt.Sprintf("%d", len(bdR.Res.Sites)))
	}
	if n > 0 {
		t.AddRow("geomean", "", "", fmt.Sprintf("%.3fx", geoMean(geo, n)), "", "")
	}
	return t, nil
}

func geoMean(prod float64, n int) float64 {
	if prod <= 0 || n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// RenderHyperblockMatrix runs the paper's full "larger regions" extension
// matrix end to end: basic blocks, if-conversion only, superblocks only,
// and both combined (if-conversion first, then trace formation over the
// branch-reduced CFG) — all validated against the sequential interpreter.
func RenderHyperblockMatrix(d *machine.Desc) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Extension: hyperblock-style region matrix (%s)", d.Name),
		Headers: []string{"Configuration", "Total spec cycles", "vs basic blocks"},
	}
	configs := []struct {
		name            string
		ifconv, regions bool
	}{
		{"basic blocks", false, false},
		{"if-conversion", true, false},
		{"superblocks", false, true},
		{"ifconv + superblocks", true, true},
	}
	totals := make([]int64, len(configs))
	for i, c := range configs {
		r := NewRunner(d)
		r.IfConvert = c.ifconv
		r.Regions = c.regions
		for _, w := range r.Benchmarks {
			row, err := r.Speedup(w)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.name, w.Name, err)
			}
			totals[i] += row.SpecCycles
		}
	}
	for i, c := range configs {
		t.AddRow(c.name, fmt.Sprintf("%d", totals[i]),
			fmt.Sprintf("%.3f", float64(totals[i])/float64(totals[0])))
	}
	return t, nil
}

// RenderDisambiguationAblation quantifies the cost of the conservative
// memory model the paper assumes: original schedule lengths with and
// without the trivial static disambiguator.
func RenderDisambiguationAblation(d *machine.Desc) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: conservative vs disambiguated memory dependences (%s)", d.Name),
		Headers: []string{"Benchmark", "Time (conservative)", "Time (disambiguated)", "Ratio"},
	}
	cons := NewRunner(d)
	rel := NewRunner(d)
	rel.DDG.Disambiguate = true
	rel.Cfg.DDG.Disambiguate = true
	for _, w := range workload.All() {
		bdC, err := cons.Prepare(w)
		if err != nil {
			return nil, err
		}
		bdR, err := rel.Prepare(w)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if bdC.TotalTime > 0 {
			ratio = bdR.TotalTime / bdC.TotalTime
		}
		t.AddRow(w.Name, fmt.Sprintf("%.0f", bdC.TotalTime), fmt.Sprintf("%.0f", bdR.TotalTime), stats.F(ratio))
	}
	return t, nil
}
