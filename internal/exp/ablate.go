package exp

import (
	"fmt"
	"math"

	"vliwvp/internal/machine"
	"vliwvp/internal/pool"
	"vliwvp/internal/profile"
	"vliwvp/internal/stats"
	"vliwvp/internal/workload"
)

// This file holds the ablation studies around the design choices DESIGN.md
// calls out: the 65% selection threshold, the max(stride, FCM) hybrid
// profile, the CCB size, the conservative memory dependences, and the
// superblock region-formation extension.
//
// Each driver fans its flat (configuration × benchmark) grid across a
// worker pool (the jobs parameter) into index-addressed cells, then
// aggregates serially in grid order — so tables are byte-identical at any
// parallelism. The runners share the process-wide pipeline cache: a sweep
// that varies only back-end knobs compiles and profiles each benchmark
// once.

// thresholdPoints are the selection thresholds swept (the paper keeps 0.65
// "fairly low ... to analyze the misprediction cases as well").
var thresholdPoints = []float64{0.50, 0.65, 0.80, 0.95}

// RenderThresholdSweep reports, per threshold, the number of selected
// sites, the all-benchmark average best-case and measured schedule ratios,
// and the misprediction share — the aggressiveness trade-off behind the
// paper's threshold choice.
func RenderThresholdSweep(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: load-selection threshold (%s)", d.Name),
		Headers: []string{"Threshold", "Sites", "Best ratio", "Measured ratio", "Mispredict share"},
	}
	runners := make([]*Runner, len(thresholdPoints))
	for i, th := range thresholdPoints {
		runners[i] = NewRunner(d)
		runners[i].Cfg.Threshold = th
	}
	nb := len(runners[0].Benchmarks)
	type cell struct {
		sites          int
		best, measured float64
		preds, miss    float64
	}
	cells := make([]cell, len(thresholdPoints)*nb)
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		r := runners[i/nb]
		bd, err := r.Prepare(r.Benchmarks[i%nb])
		if err != nil {
			return err
		}
		row, err := Table3(bd)
		if err != nil {
			return err
		}
		p, m := mispredictShare(bd)
		cells[i] = cell{sites: len(bd.Res.Sites), best: row.Best, measured: row.Measured, preds: p, miss: m}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti, th := range thresholdPoints {
		sites := 0
		var best, measured stats.WeightedMean
		var preds, miss float64
		for bi := 0; bi < nb; bi++ {
			c := cells[ti*nb+bi]
			sites += c.sites
			best.Add(c.best, 1)
			measured.Add(c.measured, 1)
			preds += c.preds
			miss += c.miss
		}
		share := 0.0
		if preds > 0 {
			share = miss / preds
		}
		t.AddRow(fmt.Sprintf("%.2f", th), fmt.Sprintf("%d", sites),
			stats.F(best.Mean()), stats.F(measured.Mean()), stats.Pct(share))
	}
	return t, nil
}

// mispredictShare counts profiled predictions and mispredictions.
func mispredictShare(bd *BenchData) (preds, miss float64) {
	for bk, blk := range bd.Blocks {
		for mask, n := range bd.Out.MaskCounts[bk] {
			w := float64(n)
			for i := 0; i < blk.NumSites; i++ {
				preds += w
				if mask&(1<<uint(i)) == 0 {
					miss += w
				}
			}
		}
	}
	return preds, miss
}

// RenderPredictorAblation compares selection and schedule quality when the
// profile may use only stride, only FCM, or the paper's max of both. The
// shared front-end profile is cloned before masking, so the cached copy is
// never mutated.
func RenderPredictorAblation(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: profiling predictor family (%s)", d.Name),
		Headers: []string{"Profile", "Sites", "Best ratio", "Measured ratio"},
	}
	families := []struct {
		name string
		mask func(lp *profile.LoadProfile)
	}{
		{"stride only", func(lp *profile.LoadProfile) { lp.FCMRate = 0 }},
		{"fcm only", func(lp *profile.LoadProfile) { lp.StrideRate = 0 }},
		{"max(stride,fcm)", func(lp *profile.LoadProfile) {}},
	}
	r := NewRunner(d)
	nb := len(r.Benchmarks)
	type cell struct {
		sites          int
		best, measured float64
	}
	cells := make([]cell, len(families)*nb)
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		fam, w := families[i/nb], r.Benchmarks[i%nb]
		fe, err := r.frontEndFor(w)
		if err != nil {
			return err
		}
		lens, err := r.origLensFor(w, fe)
		if err != nil {
			return err
		}
		prof := fe.Prof.Clone()
		for _, lp := range prof.Loads {
			fam.mask(lp)
		}
		bd, err := r.prepareFrom(w, fe.Prog, prof, lens)
		if err != nil {
			return err
		}
		row, err := Table3(bd)
		if err != nil {
			return err
		}
		cells[i] = cell{sites: len(bd.Res.Sites), best: row.Best, measured: row.Measured}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for fi, fam := range families {
		sites := 0
		var best, measured stats.WeightedMean
		for bi := 0; bi < nb; bi++ {
			c := cells[fi*nb+bi]
			sites += c.sites
			best.Add(c.best, 1)
			measured.Add(c.measured, 1)
		}
		t.AddRow(fam.name, fmt.Sprintf("%d", sites), stats.F(best.Mean()), stats.F(measured.Mean()))
	}
	return t, nil
}

// ccbPoints are the Compensation Code Buffer capacities swept. The
// Synchronization-bit budget is co-designed to the buffer size (a window of
// speculative issues larger than the buffer would wedge the in-order
// engines, so the compiler must not create one).
var ccbPoints = []int{4, 8, 16, DefaultCCBPoint}

// DefaultCCBPoint mirrors core.DefaultCCBCapacity without importing it into
// the table labels.
const DefaultCCBPoint = 64

// RenderCCBSweep reports end-to-end dynamic cycles as the CCB (and the
// co-designed Synchronization-bit budget) shrinks. Dynamic totals keep the
// comparison population fixed across rows: with a shrinking bit budget the
// set of speculated blocks changes, so per-block ratios would compare
// different block populations.
func RenderCCBSweep(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: Compensation Code Buffer capacity + bit budget (%s)", d.Name),
		Headers: []string{"CCB entries", "Total spec cycles", "Sites", "vs full buffer"},
	}
	runners := make([]*Runner, len(ccbPoints))
	for i, c := range ccbPoints {
		runners[i] = NewRunner(d)
		runners[i].CCBCapacity = c
		runners[i].Cfg.MaxSyncBits = c
	}
	nb := len(runners[0].Benchmarks)
	type cell struct {
		cycles int64
		sites  int
	}
	cells := make([]cell, len(ccbPoints)*nb)
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		r, w := runners[i/nb], runners[i/nb].Benchmarks[i%nb]
		row, err := r.Speedup(w)
		if err != nil {
			return err
		}
		bd, err := r.Prepare(w)
		if err != nil {
			return err
		}
		cells[i] = cell{cycles: row.SpecCycles, sites: len(bd.Res.Sites)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	totals := make([]int64, len(ccbPoints))
	sites := make([]int, len(ccbPoints))
	for ci := range ccbPoints {
		for bi := 0; bi < nb; bi++ {
			totals[ci] += cells[ci*nb+bi].cycles
			sites[ci] += cells[ci*nb+bi].sites
		}
	}
	full := totals[len(totals)-1]
	for i, c := range ccbPoints {
		rel := float64(totals[i]) / float64(full)
		t.AddRow(fmt.Sprintf("%d", c), fmt.Sprintf("%d", totals[i]),
			fmt.Sprintf("%d", sites[i]), fmt.Sprintf("%.3f", rel))
	}
	return t, nil
}

// RenderRegionAblation compares basic blocks against superblock-formed
// regions — the paper's "larger regions" expectation. The comparison runs
// end to end: per-block ratios hide the cycles that region formation saves
// by deleting block boundaries, so the columns are dynamic dual-engine
// cycle counts (both validated against the sequential interpreter).
func RenderRegionAblation(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Extension: superblock region formation (%s)", d.Name),
		Headers: []string{"Benchmark", "Spec cycles (blocks)", "Spec cycles (regions)",
			"Region gain", "Sites (blocks)", "Sites (regions)"},
	}
	base := NewRunner(d)
	reg := NewRunner(d)
	reg.Regions = true
	benches := workload.All()
	type cell struct {
		cyclesB, cyclesR int64
		sitesB, sitesR   int
	}
	cells := make([]cell, len(benches))
	err := pool.ForEach(jobs, len(benches), func(i int) error {
		w := benches[i]
		rowB, err := base.Speedup(w)
		if err != nil {
			return err
		}
		rowR, err := reg.Speedup(w)
		if err != nil {
			return err
		}
		bdB, err := base.Prepare(w)
		if err != nil {
			return err
		}
		bdR, err := reg.Prepare(w)
		if err != nil {
			return err
		}
		cells[i] = cell{
			cyclesB: rowB.SpecCycles, cyclesR: rowR.SpecCycles,
			sitesB: len(bdB.Res.Sites), sitesR: len(bdR.Res.Sites),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var geo float64 = 1
	for i, w := range benches {
		c := cells[i]
		gain := float64(c.cyclesB) / float64(c.cyclesR)
		geo *= gain
		t.AddRow(w.Name,
			fmt.Sprintf("%d", c.cyclesB), fmt.Sprintf("%d", c.cyclesR),
			fmt.Sprintf("%.3fx", gain),
			fmt.Sprintf("%d", c.sitesB), fmt.Sprintf("%d", c.sitesR))
	}
	if len(benches) > 0 {
		t.AddRow("geomean", "", "", fmt.Sprintf("%.3fx", geoMean(geo, len(benches))), "", "")
	}
	return t, nil
}

func geoMean(prod float64, n int) float64 {
	if prod <= 0 || n == 0 {
		return 0
	}
	return math.Pow(prod, 1/float64(n))
}

// RenderHyperblockMatrix runs the paper's full "larger regions" extension
// matrix end to end: basic blocks, if-conversion only, superblocks only,
// and both combined (if-conversion first, then trace formation over the
// branch-reduced CFG) — all validated against the sequential interpreter.
func RenderHyperblockMatrix(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Extension: hyperblock-style region matrix (%s)", d.Name),
		Headers: []string{"Configuration", "Total spec cycles", "vs basic blocks"},
	}
	configs := []struct {
		name            string
		ifconv, regions bool
	}{
		{"basic blocks", false, false},
		{"if-conversion", true, false},
		{"superblocks", false, true},
		{"ifconv + superblocks", true, true},
	}
	runners := make([]*Runner, len(configs))
	for i, c := range configs {
		runners[i] = NewRunner(d)
		runners[i].IfConvert = c.ifconv
		runners[i].Regions = c.regions
	}
	nb := len(runners[0].Benchmarks)
	cycles := make([]int64, len(configs)*nb)
	err := pool.ForEach(jobs, len(cycles), func(i int) error {
		r, w := runners[i/nb], runners[i/nb].Benchmarks[i%nb]
		row, err := r.Speedup(w)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", configs[i/nb].name, w.Name, err)
		}
		cycles[i] = row.SpecCycles
		return nil
	})
	if err != nil {
		return nil, err
	}
	totals := make([]int64, len(configs))
	for ci := range configs {
		for bi := 0; bi < nb; bi++ {
			totals[ci] += cycles[ci*nb+bi]
		}
	}
	for i, c := range configs {
		t.AddRow(c.name, fmt.Sprintf("%d", totals[i]),
			fmt.Sprintf("%.3f", float64(totals[i])/float64(totals[0])))
	}
	return t, nil
}

// RenderDisambiguationAblation quantifies the cost of the conservative
// memory model the paper assumes: original schedule lengths with and
// without the trivial static disambiguator.
func RenderDisambiguationAblation(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title:   fmt.Sprintf("Ablation: conservative vs disambiguated memory dependences (%s)", d.Name),
		Headers: []string{"Benchmark", "Time (conservative)", "Time (disambiguated)", "Ratio"},
	}
	cons := NewRunner(d)
	rel := NewRunner(d)
	rel.DDG.Disambiguate = true
	rel.Cfg.DDG.Disambiguate = true
	benches := workload.All()
	type cell struct {
		timeC, timeR float64
	}
	cells := make([]cell, len(benches))
	err := pool.ForEach(jobs, len(benches), func(i int) error {
		w := benches[i]
		bdC, err := cons.Prepare(w)
		if err != nil {
			return err
		}
		bdR, err := rel.Prepare(w)
		if err != nil {
			return err
		}
		cells[i] = cell{timeC: bdC.TotalTime, timeR: bdR.TotalTime}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, w := range benches {
		c := cells[i]
		ratio := 0.0
		if c.timeC > 0 {
			ratio = c.timeR / c.timeC
		}
		t.AddRow(w.Name, fmt.Sprintf("%.0f", c.timeC), fmt.Sprintf("%.0f", c.timeR), stats.F(ratio))
	}
	return t, nil
}
