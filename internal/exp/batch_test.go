package exp

import (
	"strings"
	"testing"

	"vliwvp/internal/machine"
	"vliwvp/internal/workload"
)

// TestRunBatchCorpus pins the batched corpus workflow: every kernel
// validates against the interpreter inside RunBatchCorpus, results come
// back in seed order, and a rerun over the same corpus (cache-warm,
// pooled simulators reused) reports identical cycle counts.
func TestRunBatchCorpus(t *testing.T) {
	r := NewRunner(machine.W4)
	const seed, n = 1, 6
	first, err := r.RunBatchCorpus(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != n {
		t.Fatalf("got %d results, want %d", len(first), n)
	}
	for i, res := range first {
		if want := workload.Generated(seed, n)[i].Name; res.Name != want {
			t.Errorf("result %d named %q, want %q", i, res.Name, want)
		}
		if res.Cycles <= 0 || res.Instrs <= 0 {
			t.Errorf("%s: degenerate run: %+v", res.Name, res)
		}
	}
	second, err := r.RunBatchCorpus(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Cycles != second[i].Cycles || first[i].Value != second[i].Value {
			t.Errorf("%s: rerun diverged: (%d, %d) != (%d, %d)", first[i].Name,
				first[i].Cycles, first[i].Value, second[i].Cycles, second[i].Value)
		}
	}
}

func TestRenderBatch(t *testing.T) {
	r := NewRunner(machine.W4)
	tbl, results, err := RenderBatch(r, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	out := tbl.String()
	for _, res := range results {
		if !strings.Contains(out, res.Name) {
			t.Errorf("table missing kernel %q:\n%s", res.Name, out)
		}
	}
	if !strings.Contains(out, "total") {
		t.Errorf("table missing total row:\n%s", out)
	}
}
