package exp

// Golden-equivalence suite: pins the byte-exact output of the compile flow
// — every experiment table, the full speculated schedule of every
// benchmark, and the pinned bench-grid cycle counts — against fixtures
// generated BEFORE the pass-manager refactor. Any pipeline rewiring that
// changes a single byte of a schedule or a table fails here.
//
// Regenerate fixtures deliberately with:
//
//	go test ./internal/exp -run TestGoldenEquivalence -update-golden

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vliwvp/internal/exp/cache"
	"vliwvp/internal/machine"
	"vliwvp/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the golden-equivalence fixtures from the current pipeline output")

// goldenRunner is the pinned configuration every fixture renders under:
// the paper's 4-wide machine, four workers (tables must be identical at
// any parallelism), and a private cache so other tests cannot warm or
// poison the pipeline state this suite observes.
func goldenRunner() *Runner {
	r := NewRunner(machine.W4)
	r.Jobs = 4
	r.Cache = cache.New()
	return r
}

func TestGoldenEquivalenceTables(t *testing.T) {
	r := goldenRunner()
	var sb strings.Builder
	add := func(name string, f func() (fmt.Stringer, error)) {
		tab, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintf(&sb, "%s\n", tab)
	}
	add("table2", func() (fmt.Stringer, error) { tab, _, err := RenderTable2(r); return tab, err })
	add("table3", func() (fmt.Stringer, error) { tab, _, err := RenderTable3(r); return tab, err })
	add("fig8", func() (fmt.Stringer, error) { tab, _, err := RenderFigure8(r); return tab, err })
	add("table4", func() (fmt.Stringer, error) { tab, _, err := RenderTable4(r.Jobs); return tab, err })
	add("baseline", func() (fmt.Stringer, error) { tab, _, err := RenderBaseline(r, DefaultICache); return tab, err })
	add("speedup", func() (fmt.Stringer, error) { tab, _, err := RenderSpeedup(r); return tab, err })
	add("threshold", func() (fmt.Stringer, error) { return RenderThresholdSweep(r.D, r.Jobs) })
	add("predictors", func() (fmt.Stringer, error) { return RenderPredictorAblation(r.D, r.Jobs) })
	add("ccb", func() (fmt.Stringer, error) { return RenderCCBSweep(r.D, r.Jobs) })
	add("regions", func() (fmt.Stringer, error) { return RenderRegionAblation(r.D, r.Jobs) })
	add("hyperblocks", func() (fmt.Stringer, error) { return RenderHyperblockMatrix(r.D, r.Jobs) })
	add("disambig", func() (fmt.Stringer, error) { return RenderDisambiguationAblation(r.D, r.Jobs) })
	checkGolden(t, "tables.txt", sb.String())
}

// TestGoldenEquivalencePredictorZoo pins the dynamic predictor-zoo
// ablation — per scheme per benchmark: trusted predictions, misses,
// the confidence gate's suppression counters, accuracy, coverage, and
// speedup — in its own fixture so the static tables.txt fixture stays
// byte-identical to its pre-zoo state.
func TestGoldenEquivalencePredictorZoo(t *testing.T) {
	r := goldenRunner()
	tab, err := RenderPredictorZoo(r.D, r.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "predzoo.txt", tab.String()+"\n")
}

// TestGoldenEquivalenceCombined pins the unified control+value speculation
// ablation (branch-predictor axis × value-predictor axis) and checks the
// acceptance teeth directly: every dynamic-branch configuration must report
// branch activity and at least one must flush in-flight LdPred/CCB state —
// an all-zero Flushes column would mean the flush path went vacuous.
func TestGoldenEquivalenceCombined(t *testing.T) {
	r := goldenRunner()
	tab, err := RenderCombined(r.D, r.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	var flushes, brPreds int64
	for _, row := range tab.Rows {
		if row[0] == "static" || row[2] != "(all)" {
			continue
		}
		var f, p int64
		fmt.Sscanf(row[6], "%d", &f)
		fmt.Sscanf(row[3], "%d", &p)
		if p == 0 {
			t.Errorf("%s/%s: dynamic branch config made no predictions", row[0], row[1])
		}
		flushes += f
		brPreds += p
	}
	if brPreds == 0 {
		t.Fatal("no dynamic branch rows in the combined table")
	}
	if flushes == 0 {
		t.Error("combined table's Flushes column is all zero: mispredicted branches squashed no in-flight state")
	}
	checkGolden(t, "combined.txt", tab.String()+"\n")
}

func TestGoldenEquivalenceSchedules(t *testing.T) {
	r := goldenRunner()
	var sb strings.Builder
	for _, b := range workload.All() {
		ps, res, err := r.SpecSchedule(b)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		fmt.Fprintf(&sb, "== %s ==\n", b.Name)
		for _, f := range res.Prog.Funcs {
			fs := ps.Funcs[f.Name]
			fmt.Fprintf(&sb, "func %s\n", f.Name)
			for i, bs := range fs.Blocks {
				fmt.Fprintf(&sb, "b%d len=%d\n", i, bs.Length())
				for c, in := range bs.Instrs {
					fmt.Fprintf(&sb, "  c%d wait=%#x:", c, in.WaitBits)
					for _, op := range in.Ops {
						fmt.Fprintf(&sb, " [%s]", op)
					}
					sb.WriteByte('\n')
				}
			}
		}
	}
	checkGolden(t, "schedules.txt", sb.String())
}

func TestGoldenEquivalenceBenchGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("bench grid is the slow fixture; run without -short")
	}
	rec, err := RunBenchGrid(machine.W4, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, e := range rec.Entries {
		// Only simulated cycle counts are deterministic; wall time and
		// allocation figures move with hardware and Go releases.
		fmt.Fprintf(&sb, "%s cycles=%d\n", e.Name, e.Cycles)
	}
	checkGolden(t, "benchgrid.txt", sb.String())
}

// checkGolden compares got against the named fixture, or rewrites it under
// -update-golden.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture %s (generate with -update-golden): %v", path, err)
	}
	if got == string(want) {
		return
	}
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Fatalf("%s: first divergence at line %d:\n  got:  %q\n  want: %q\n(got %d lines, want %d)",
				name, i+1, gl[i], wl[i], len(gl), len(wl))
		}
	}
	t.Fatalf("%s: output differs in length: got %d lines, want %d", name, len(gl), len(wl))
}
