package exp_test

import (
	"testing"

	"vliwvp/internal/exp"
	"vliwvp/internal/exp/cache"
	"vliwvp/internal/machine"
	"vliwvp/internal/workload"
)

// The golden property of the parallel runner: rendered tables are
// byte-identical at any worker count, with a cold or a warm pipeline cache.
// Each renderer fans cells out in parallel but aggregates in input order,
// so goroutine scheduling must never leak into the output.

// goldenRunner builds a runner over a small benchmark subset with a private
// cache (tests must not warm the process-wide cache for each other).
func goldenRunner(jobs int, c *cache.Cache) *exp.Runner {
	r := exp.NewRunner(machine.W4)
	r.Benchmarks = workload.All()[:3]
	r.Jobs = jobs
	r.Cache = c
	return r
}

// renderAll renders every table the runner drives, concatenated.
func renderAll(t *testing.T, r *exp.Runner, full bool) string {
	t.Helper()
	t2, _, err := exp.RenderTable2(r)
	if err != nil {
		t.Fatalf("RenderTable2: %v", err)
	}
	t3, _, err := exp.RenderTable3(r)
	if err != nil {
		t.Fatalf("RenderTable3: %v", err)
	}
	f8, _, err := exp.RenderFigure8(r)
	if err != nil {
		t.Fatalf("RenderFigure8: %v", err)
	}
	out := t2.String() + t3.String() + f8.String()
	if full {
		sp, _, err := exp.RenderSpeedup(r)
		if err != nil {
			t.Fatalf("RenderSpeedup: %v", err)
		}
		bl, _, err := exp.RenderBaseline(r, exp.DefaultICache)
		if err != nil {
			t.Fatalf("RenderBaseline: %v", err)
		}
		out += sp.String() + bl.String()
	}
	return out
}

func TestParallelRenderingIsByteIdentical(t *testing.T) {
	full := !testing.Short()

	serial := renderAll(t, goldenRunner(1, cache.New()), full)
	if serial == "" {
		t.Fatal("serial rendering produced no output")
	}

	// Parallel with a cold cache: same bytes.
	coldCache := cache.New()
	parallelCold := renderAll(t, goldenRunner(8, coldCache), full)
	if parallelCold != serial {
		t.Errorf("jobs=8 cold-cache output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallelCold)
	}

	// Parallel again over the now-warm cache: still the same bytes.
	parallelWarm := renderAll(t, goldenRunner(8, coldCache), full)
	if parallelWarm != serial {
		t.Errorf("jobs=8 warm-cache output differs from serial:\n--- serial ---\n%s\n--- warm ---\n%s", serial, parallelWarm)
	}

	if coldCache.Len() == 0 {
		t.Error("pipeline cache stayed empty across rendering")
	}
}

// TestAblationParallelIsByteIdentical covers the sweep drivers (flat
// config×benchmark grids) at several worker counts.
func TestAblationParallelIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweeps are long; run without -short")
	}
	render := func(jobs int) string {
		th, err := exp.RenderThresholdSweep(machine.W4, jobs)
		if err != nil {
			t.Fatalf("RenderThresholdSweep(jobs=%d): %v", jobs, err)
		}
		pa, err := exp.RenderPredictorAblation(machine.W4, jobs)
		if err != nil {
			t.Fatalf("RenderPredictorAblation(jobs=%d): %v", jobs, err)
		}
		return th.String() + pa.String()
	}
	serial := render(1)
	parallel := render(8)
	if parallel != serial {
		t.Errorf("jobs=8 ablation output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestRunnerSharesFrontEndAcrossConfigs pins the cache keying: two runners
// differing only in back-end knobs (CCB capacity) share one front end,
// while a front-end knob (if-conversion) forces a distinct entry.
func TestRunnerSharesFrontEndAcrossConfigs(t *testing.T) {
	c := cache.New()
	b := workload.All()[0]

	r1 := goldenRunner(1, c)
	if _, err := r1.Prepare(b); err != nil {
		t.Fatal(err)
	}
	n1 := c.Len()
	if n1 == 0 {
		t.Fatal("Prepare populated no cache entries")
	}

	r2 := goldenRunner(1, c)
	r2.CCBCapacity = 4
	if _, err := r2.Prepare(b); err != nil {
		t.Fatal(err)
	}
	if n2 := c.Len(); n2 != n1 {
		t.Errorf("back-end knob grew the cache from %d to %d entries; front end not shared", n1, n2)
	}

	r3 := goldenRunner(1, c)
	r3.IfConvert = true
	if _, err := r3.Prepare(b); err != nil {
		t.Fatal(err)
	}
	if n3 := c.Len(); n3 <= n1 {
		t.Errorf("front-end knob did not add cache entries (still %d); keying too coarse", n3)
	}
}
