// Package exp regenerates every table and figure of the paper's evaluation
// (§3) from the pipeline in this repository: compile → optimize → value
// profile → select & transform → schedule → outcome profile → dual-engine
// timing. See DESIGN.md's per-experiment index for the mapping.
//
// The Render* drivers fan independent (benchmark, configuration) cells out
// across a bounded worker pool (Runner.Jobs) and aggregate in input order,
// so parallel runs render byte-identical tables. Configuration-independent
// pipeline prefixes are shared through a keyed single-flight cache (see
// frontend.go), so an ablation sweep compiles and profiles each benchmark
// once rather than once per point.
package exp

import (
	"fmt"
	"sync"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/exp/cache"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/pool"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// Runner fixes the experimental configuration.
type Runner struct {
	D          *machine.Desc
	Cfg        speculate.Config
	DDG        ddg.Options
	Benchmarks []*workload.Benchmark
	// IfConvert enables Select-based if-conversion of small diamonds before
	// region formation (the predication half of the paper's hyperblock
	// extension).
	IfConvert bool
	IfConvCfg ifconv.Config
	// Regions enables profile-guided superblock formation before value
	// speculation (the paper's anticipated extension).
	Regions    bool
	RegionsCfg regions.Config
	// CCBCapacity overrides the Compensation Code Buffer size in the
	// timing model (0 = default).
	CCBCapacity int
	// Mem selects the memory hierarchy every simulator runs under (nil =
	// the paper's flat model). Like CCBCapacity it is sim-time-only:
	// compiled products are shared across memory configurations, but
	// baseline runs cache per hierarchy (cycles depend on it).
	Mem *machine.MemConfig
	// Jobs bounds the worker pool the Render* drivers fan benchmarks and
	// configurations across. 0 or 1 runs serially; any value produces
	// byte-identical tables (results aggregate in input order).
	Jobs int
	// Cache overrides the process-wide pipeline cache (tests isolate with
	// private caches). Nil uses the shared one.
	Cache *cache.Cache
	// ValidateIR forces between-pass IR validation on every pipeline run
	// (the manager also turns it on by itself under `go test`). Wired to
	// vpexp -validate-ir.
	ValidateIR bool
	// PassSink, when non-nil, receives one event per executed or
	// cache-served pipeline pass. Nil costs nothing.
	PassSink obs.PassSink
	// DumpIR, when non-nil, receives the IR after every pipeline pass.
	// Dump runs bypass the compile cache. Wired to vpexp -dump-ir.
	DumpIR pipeline.DumpFunc
}

// NewRunner uses the paper's settings: the given machine, 65% load
// threshold, all eight benchmarks.
func NewRunner(d *machine.Desc) *Runner {
	return &Runner{
		D:          d,
		Cfg:        speculate.DefaultConfig(d),
		Benchmarks: workload.All(),
		IfConvCfg:  ifconv.DefaultConfig(),
		RegionsCfg: regions.DefaultConfig(),
	}
}

// forEach fans fn over [0, n) on the runner's worker pool.
func (r *Runner) forEach(n int, fn func(i int) error) error {
	return pool.ForEach(r.Jobs, n, fn)
}

// BlockData is the per-speculated-block measurement state.
type BlockData struct {
	Key      profile.BlockKey
	OrigLen  int
	NumSites int
	Sched    *sched.BlockSched
	An       *core.BlockAnalysis
	// mu guards lenByMask and timing: a BenchData may be shared across
	// worker goroutines (and is memoized across tests), so the per-mask
	// timing memo must be race-free.
	mu sync.Mutex
	// lenByMask caches the dual-engine timing per outcome mask.
	lenByMask map[uint32]core.BlockResult
	timing    *core.Timing
}

// Result returns the dual-engine timing of the block under an outcome mask.
func (bd *BlockData) Result(mask uint32) (core.BlockResult, error) {
	bd.mu.Lock()
	defer bd.mu.Unlock()
	if r, ok := bd.lenByMask[mask]; ok {
		return r, nil
	}
	r, err := bd.timing.SimulateBlock(bd.Sched, bd.An, mask)
	if err != nil {
		return core.BlockResult{}, err
	}
	bd.lenByMask[mask] = r
	return r, nil
}

// FullMask is the all-correct outcome.
func (bd *BlockData) FullMask() uint32 { return uint32(1)<<uint(bd.NumSites) - 1 }

// BenchData is one benchmark's fully prepared measurement state.
type BenchData struct {
	Bench *workload.Benchmark
	Prog  *ir.Program // optimized original
	Prof  *profile.Profile
	Res   *speculate.Result
	Out   *profile.Outcomes
	// Blocks holds per-speculated-block data.
	Blocks map[profile.BlockKey]*BlockData
	// TotalTime is Σ freq·origLen over every block of the program — the
	// estimated original execution time that fractions are reported
	// against.
	TotalTime float64
	// origLens caches original schedule lengths of all blocks. It may be a
	// cache-shared map; it is read-only after construction.
	origLens map[profile.BlockKey]int
}

// Prepare runs the full profile-and-transform pipeline for one benchmark.
// The configuration-independent prefix (compile, optional if-conversion and
// region formation, value profiling, original-schedule lengths) is served
// from the pipeline cache and shared across configurations.
func (r *Runner) Prepare(b *workload.Benchmark) (*BenchData, error) {
	fe, err := r.frontEndFor(b)
	if err != nil {
		return nil, err
	}
	lens, err := r.origLensFor(b, fe)
	if err != nil {
		return nil, err
	}
	return r.prepareFrom(b, fe.Prog, fe.Prof, lens)
}

// PrepareWithProfile is Prepare with a caller-supplied value profile
// (useful for predictor ablations that rescore the same program). Nothing
// is read from or written to the pipeline cache on this path.
func (r *Runner) PrepareWithProfile(b *workload.Benchmark, prog *ir.Program, prof *profile.Profile) (*BenchData, error) {
	return r.prepareFrom(b, prog, prof, nil)
}

// computeOrigLens schedules every block of the untransformed program and
// records its length. prog is read-only here.
func (r *Runner) computeOrigLens(prog *ir.Program) map[profile.BlockKey]int {
	lens := map[profile.BlockKey]int{}
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			g := ddg.Build(blk, r.D.Latency, r.DDG)
			bk := profile.BlockKey{Func: f.Name, Block: blk.ID}
			lens[bk] = sched.ScheduleBlock(blk, g, r.D).Length()
		}
	}
	return lens
}

// prepareFrom finishes preparation from a front end. lens may be nil (they
// are recomputed) or a cache-shared read-only map.
func (r *Runner) prepareFrom(b *workload.Benchmark, prog *ir.Program, prof *profile.Profile, lens map[profile.BlockKey]int) (*BenchData, error) {
	ctx := &pipeline.Ctx{Prog: prog, Prof: prof, Machine: r.D, Shared: true}
	if err := r.manager().Run(r.SpeculatePlan(), ctx); err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	res := ctx.Spec
	out, err := profile.CollectOutcomes(prog, res.Selection, "main")
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}

	if lens == nil {
		lens = r.computeOrigLens(prog)
	}
	bd := &BenchData{
		Bench:    b,
		Prog:     prog,
		Prof:     prof,
		Res:      res,
		Out:      out,
		Blocks:   map[profile.BlockKey]*BlockData{},
		origLens: lens,
	}

	// Total original time, accumulated in program order for determinism.
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			bk := profile.BlockKey{Func: f.Name, Block: blk.ID}
			bd.TotalTime += float64(prof.BlockFreq[bk]) * float64(lens[bk])
		}
	}

	// Transformed block schedules + analyses for speculated blocks.
	for bk, info := range res.Blocks {
		blk := res.Prog.Func(bk.Func).Blocks[bk.Block]
		g := speculate.BuildGraph(blk, r.D, r.DDG)
		bs := sched.ScheduleBlock(blk, g, r.D)
		if err := bs.Validate(g, r.D); err != nil {
			return nil, fmt.Errorf("%s %v: %w", b.Name, bk, err)
		}
		an, err := core.Analyze(blk)
		if err != nil {
			return nil, fmt.Errorf("%s %v: %w", b.Name, bk, err)
		}
		tm := core.NewTiming(r.D)
		if r.CCBCapacity > 0 {
			tm.CCBCapacity = r.CCBCapacity
		}
		bd.Blocks[bk] = &BlockData{
			Key:       bk,
			OrigLen:   lens[bk],
			NumSites:  len(info.SiteIDs),
			Sched:     bs,
			An:        an,
			lenByMask: map[uint32]core.BlockResult{},
			timing:    tm,
		}
	}
	return bd, nil
}

// OrigLen returns the original schedule length of any block.
func (bd *BenchData) OrigLen(bk profile.BlockKey) int { return bd.origLens[bk] }
