// Package exp regenerates every table and figure of the paper's evaluation
// (§3) from the pipeline in this repository: compile → optimize → value
// profile → select & transform → schedule → outcome profile → dual-engine
// timing. See DESIGN.md's per-experiment index for the mapping.
package exp

import (
	"fmt"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// Runner fixes the experimental configuration.
type Runner struct {
	D          *machine.Desc
	Cfg        speculate.Config
	DDG        ddg.Options
	Benchmarks []*workload.Benchmark
	// IfConvert enables Select-based if-conversion of small diamonds before
	// region formation (the predication half of the paper's hyperblock
	// extension).
	IfConvert bool
	IfConvCfg ifconv.Config
	// Regions enables profile-guided superblock formation before value
	// speculation (the paper's anticipated extension).
	Regions    bool
	RegionsCfg regions.Config
	// CCBCapacity overrides the Compensation Code Buffer size in the
	// timing model (0 = default).
	CCBCapacity int
}

// NewRunner uses the paper's settings: the given machine, 65% load
// threshold, all eight benchmarks.
func NewRunner(d *machine.Desc) *Runner {
	return &Runner{
		D:          d,
		Cfg:        speculate.DefaultConfig(d),
		Benchmarks: workload.All(),
		IfConvCfg:  ifconv.DefaultConfig(),
		RegionsCfg: regions.DefaultConfig(),
	}
}

// BlockData is the per-speculated-block measurement state.
type BlockData struct {
	Key      profile.BlockKey
	OrigLen  int
	NumSites int
	Sched    *sched.BlockSched
	An       *core.BlockAnalysis
	// lenByMask caches the dual-engine timing per outcome mask.
	lenByMask map[uint32]core.BlockResult
	timing    *core.Timing
}

// Result returns the dual-engine timing of the block under an outcome mask.
func (bd *BlockData) Result(mask uint32) (core.BlockResult, error) {
	if r, ok := bd.lenByMask[mask]; ok {
		return r, nil
	}
	r, err := bd.timing.SimulateBlock(bd.Sched, bd.An, mask)
	if err != nil {
		return core.BlockResult{}, err
	}
	bd.lenByMask[mask] = r
	return r, nil
}

// FullMask is the all-correct outcome.
func (bd *BlockData) FullMask() uint32 { return uint32(1)<<uint(bd.NumSites) - 1 }

// BenchData is one benchmark's fully prepared measurement state.
type BenchData struct {
	Bench *workload.Benchmark
	Prog  *ir.Program // optimized original
	Prof  *profile.Profile
	Res   *speculate.Result
	Out   *profile.Outcomes
	// Blocks holds per-speculated-block data.
	Blocks map[profile.BlockKey]*BlockData
	// TotalTime is Σ freq·origLen over every block of the program — the
	// estimated original execution time that fractions are reported
	// against.
	TotalTime float64
	// origLens caches original schedule lengths of all blocks.
	origLens map[profile.BlockKey]int
}

// Prepare runs the full profile-and-transform pipeline for one benchmark.
func (r *Runner) Prepare(b *workload.Benchmark) (*BenchData, error) {
	prog, err := b.Compile()
	if err != nil {
		return nil, err
	}
	if r.IfConvert {
		ifconv.Convert(prog, r.IfConvCfg)
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("%s after if-conversion: %w", b.Name, err)
		}
	}
	if r.Regions {
		// Region formation duplicates code (fresh op IDs), so it uses its
		// own edge profile and the value profile is collected afterwards.
		prof0, err := profile.Collect(prog, "main")
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		regions.Form(prog, prof0, r.RegionsCfg)
		if err := prog.Validate(); err != nil {
			return nil, fmt.Errorf("%s after region formation: %w", b.Name, err)
		}
	}
	prof, err := profile.Collect(prog, "main")
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	return r.prepareFrom(b, prog, prof)
}

// PrepareWithProfile is Prepare with a caller-supplied value profile
// (useful for predictor ablations that rescore the same program).
func (r *Runner) PrepareWithProfile(b *workload.Benchmark, prog *ir.Program, prof *profile.Profile) (*BenchData, error) {
	return r.prepareFrom(b, prog, prof)
}

func (r *Runner) prepareFrom(b *workload.Benchmark, prog *ir.Program, prof *profile.Profile) (*BenchData, error) {
	res, err := speculate.Transform(prog, prof, r.Cfg)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}
	out, err := profile.CollectOutcomes(prog, res.Selection, "main")
	if err != nil {
		return nil, fmt.Errorf("%s: %w", b.Name, err)
	}

	bd := &BenchData{
		Bench:    b,
		Prog:     prog,
		Prof:     prof,
		Res:      res,
		Out:      out,
		Blocks:   map[profile.BlockKey]*BlockData{},
		origLens: map[profile.BlockKey]int{},
	}

	// Original schedule lengths and total time, over every block.
	for _, f := range prog.Funcs {
		for _, blk := range f.Blocks {
			g := ddg.Build(blk, r.D.Latency, r.DDG)
			l := sched.ScheduleBlock(blk, g, r.D).Length()
			bk := profile.BlockKey{Func: f.Name, Block: blk.ID}
			bd.origLens[bk] = l
			bd.TotalTime += float64(prof.BlockFreq[bk]) * float64(l)
		}
	}

	// Transformed block schedules + analyses for speculated blocks.
	for bk, info := range res.Blocks {
		blk := res.Prog.Func(bk.Func).Blocks[bk.Block]
		g := speculate.BuildGraph(blk, r.D, r.DDG)
		bs := sched.ScheduleBlock(blk, g, r.D)
		if err := bs.Validate(g, r.D); err != nil {
			return nil, fmt.Errorf("%s %v: %w", b.Name, bk, err)
		}
		an, err := core.Analyze(blk)
		if err != nil {
			return nil, fmt.Errorf("%s %v: %w", b.Name, bk, err)
		}
		tm := core.NewTiming(r.D)
		if r.CCBCapacity > 0 {
			tm.CCBCapacity = r.CCBCapacity
		}
		bd.Blocks[bk] = &BlockData{
			Key:       bk,
			OrigLen:   bd.origLens[bk],
			NumSites:  len(info.SiteIDs),
			Sched:     bs,
			An:        an,
			lenByMask: map[uint32]core.BlockResult{},
			timing:    tm,
		}
	}
	return bd, nil
}

// OrigLen returns the original schedule length of any block.
func (bd *BenchData) OrigLen(bk profile.BlockKey) int { return bd.origLens[bk] }
