package exp_test

import (
	"testing"

	"vliwvp/internal/exp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/workload"
)

func TestThresholdControlsAggressiveness(t *testing.T) {
	// Raising the selection threshold must not increase the number of
	// selected sites and must not increase the misprediction share.
	prevSites := 1 << 30
	prevShare := 1.0
	for _, th := range []float64{0.50, 0.80, 0.95} {
		r := exp.NewRunner(machine.W4)
		r.Cfg.Threshold = th
		r.Benchmarks = workload.All()
		sites := 0
		var preds, miss float64
		for _, w := range r.Benchmarks {
			bd, err := r.Prepare(w)
			if err != nil {
				t.Fatal(err)
			}
			sites += len(bd.Res.Sites)
			for bk, blk := range bd.Blocks {
				for mask, n := range bd.Out.MaskCounts[bk] {
					for i := 0; i < blk.NumSites; i++ {
						preds += float64(n)
						if mask&(1<<uint(i)) == 0 {
							miss += float64(n)
						}
					}
				}
			}
		}
		share := 0.0
		if preds > 0 {
			share = miss / preds
		}
		if sites > prevSites {
			t.Errorf("threshold %.2f: %d sites, more than at the lower threshold (%d)", th, sites, prevSites)
		}
		if share > prevShare+0.02 {
			t.Errorf("threshold %.2f: mispredict share %.3f grew past %.3f", th, share, prevShare)
		}
		prevSites, prevShare = sites, share
	}
}

func TestHybridProfileSelectsAtLeastAsManySites(t *testing.T) {
	// max(stride, FCM) dominates either family alone, so it can never
	// select fewer sites.
	countSites := func(strideOnly, fcmOnly bool) int {
		r := exp.NewRunner(machine.W4)
		total := 0
		for _, w := range []*workload.Benchmark{workload.Compress, workload.Li, workload.M88ksim} {
			prog, err := w.Compile()
			if err != nil {
				t.Fatal(err)
			}
			prof, err := profCollect(t, prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, lp := range prof.Loads {
				if strideOnly {
					lp.FCMRate = 0
				}
				if fcmOnly {
					lp.StrideRate = 0
				}
			}
			bd, err := r.PrepareWithProfile(w, prog, prof)
			if err != nil {
				t.Fatal(err)
			}
			total += len(bd.Res.Sites)
		}
		return total
	}
	hybrid := countSites(false, false)
	stride := countSites(true, false)
	fcm := countSites(false, true)
	if hybrid < stride || hybrid < fcm {
		t.Errorf("hybrid selected %d sites, components %d/%d — max must dominate", hybrid, stride, fcm)
	}
	t.Logf("sites: hybrid %d, stride-only %d, fcm-only %d", hybrid, stride, fcm)
}

func TestRegionsImproveEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulations")
	}
	base := exp.NewRunner(machine.W4)
	reg := exp.NewRunner(machine.W4)
	reg.Regions = true
	var cyclesBase, cyclesReg int64
	for _, w := range []*workload.Benchmark{workload.Compress, workload.Vortex} {
		rb, err := base.Speedup(w)
		if err != nil {
			t.Fatal(err)
		}
		rr, err := reg.Speedup(w)
		if err != nil {
			t.Fatal(err)
		}
		cyclesBase += rb.SpecCycles
		cyclesReg += rr.SpecCycles
	}
	if cyclesReg >= cyclesBase {
		t.Errorf("region formation did not help: %d vs %d cycles", cyclesReg, cyclesBase)
	}
	t.Logf("spec cycles: blocks %d, regions %d (%.3fx)", cyclesBase, cyclesReg,
		float64(cyclesBase)/float64(cyclesReg))
}

func TestSmallerCCBNeverFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulations")
	}
	var prev int64 = 1 << 62
	for _, c := range []int{64, 8, 4} { // shrinking
		r := exp.NewRunner(machine.W4)
		r.CCBCapacity = c
		r.Cfg.MaxSyncBits = c
		var total int64
		for _, w := range []*workload.Benchmark{workload.Compress, workload.M88ksim} {
			row, err := r.Speedup(w)
			if err != nil {
				t.Fatalf("capacity %d: %v", c, err)
			}
			total += row.SpecCycles
		}
		// A smaller buffer (and bit budget) may be arbitrarily slower but
		// must never beat a larger one (1% tolerance for site-selection
		// noise between budgets).
		if c != 64 && total < prev-prev/100 {
			t.Errorf("capacity %d took %d cycles, beating the larger buffer (%d)", c, total, prev)
		}
		prev = total
	}
}

func TestDisambiguationNeverLengthens(t *testing.T) {
	cons := exp.NewRunner(machine.W4)
	rel := exp.NewRunner(machine.W4)
	rel.DDG.Disambiguate = true
	rel.Cfg.DDG.Disambiguate = true
	for _, w := range []*workload.Benchmark{workload.Swim, workload.Li} {
		bdC, err := cons.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		bdR, err := rel.Prepare(w)
		if err != nil {
			t.Fatal(err)
		}
		if bdR.TotalTime > bdC.TotalTime {
			t.Errorf("%s: disambiguation lengthened schedules: %v > %v", w.Name, bdR.TotalTime, bdC.TotalTime)
		}
	}
}

// profCollect adapts profile.Collect for the ablation tests.
func profCollect(t *testing.T, prog *ir.Program) (*profile.Profile, error) {
	t.Helper()
	return profile.Collect(prog, "main")
}
