package exp

import (
	"fmt"

	"vliwvp/internal/machine"
	"vliwvp/internal/pool"
	"vliwvp/internal/predict"
	"vliwvp/internal/stats"
)

// zooSpecs are the predictor configurations the zoo grid sweeps: every
// forced hardware scheme, the per-site profiled and zoo-wide auto
// selections, and a gated auto point showing what runtime confidence
// counters add on top of static selection. Parsed specs double as the
// row labels (canonical keys), so the table pins the config grammar too.
var zooSpecs = []string{
	"profiled", "last", "stride", "fcm", "hybrid", "lnv", "vtage",
	"auto", "auto:conf=2",
}

// RenderPredictorZoo runs the end-to-end dynamic ablation over the
// predictor zoo: per configuration and per benchmark, the trusted
// predictions, their accuracy, the coverage the confidence gate leaves
// trusted, and the whole-program speedup over the unspeculated baseline.
// Unlike RenderPredictorAblation (which rescopes the static profile),
// every cell here recompiles site selection under the named scheme and
// runs the real hardware predictor tables in the dual-engine simulator —
// the dynamic half of the zoo comparison. Baseline runs are shared
// across configurations through the pipeline cache; each "(all)" row
// aggregates its configuration with a cycle-weighted speedup.
func RenderPredictorZoo(d *machine.Desc, jobs int) (*stats.Table, error) {
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation: dynamic predictor zoo (%s)", d.Name),
		Headers: []string{"Predictor", "Benchmark", "Preds", "Mispred",
			"Supp", "SuppWrong", "Accuracy", "Coverage", "Speedup"},
	}
	runners := make([]*Runner, len(zooSpecs))
	for i, spec := range zooSpecs {
		cfg, err := predict.Parse(spec)
		if err != nil {
			return nil, fmt.Errorf("zoo spec %q: %w", spec, err)
		}
		runners[i] = NewRunner(d)
		runners[i].Cfg.Predictor = cfg
	}
	nb := len(runners[0].Benchmarks)
	cells := make([]SpeedupRow, len(zooSpecs)*nb)
	err := pool.ForEach(jobs, len(cells), func(i int) error {
		r, b := runners[i/nb], runners[i/nb].Benchmarks[i%nb]
		row, err := r.Speedup(b)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", zooSpecs[i/nb], b.Name, err)
		}
		cells[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	ratio := func(num, den int64) string {
		if den == 0 {
			return "-"
		}
		return stats.Pct(float64(num) / float64(den))
	}
	for si := range zooSpecs {
		label := runners[si].Cfg.Predictor.Key()
		var sum SpeedupRow
		for bi := 0; bi < nb; bi++ {
			c := cells[si*nb+bi]
			sum.BaseCycles += c.BaseCycles
			sum.SpecCycles += c.SpecCycles
			sum.Predictions += c.Predictions
			sum.Mispredicts += c.Mispredicts
			sum.Suppressed += c.Suppressed
			sum.SuppressedWrong += c.SuppressedWrong
			t.AddRow(label, c.Name,
				fmt.Sprintf("%d", c.Predictions), fmt.Sprintf("%d", c.Mispredicts),
				fmt.Sprintf("%d", c.Suppressed), fmt.Sprintf("%d", c.SuppressedWrong),
				ratio(c.Predictions-c.Mispredicts, c.Predictions),
				ratio(c.Predictions, c.Predictions+c.Suppressed),
				fmt.Sprintf("%.3f", c.Speedup))
		}
		speedup := 0.0
		if sum.SpecCycles > 0 {
			speedup = float64(sum.BaseCycles) / float64(sum.SpecCycles)
		}
		t.AddRow(label, "(all)",
			fmt.Sprintf("%d", sum.Predictions), fmt.Sprintf("%d", sum.Mispredicts),
			fmt.Sprintf("%d", sum.Suppressed), fmt.Sprintf("%d", sum.SuppressedWrong),
			ratio(sum.Predictions-sum.Mispredicts, sum.Predictions),
			ratio(sum.Predictions, sum.Predictions+sum.Suppressed),
			fmt.Sprintf("%.3f", speedup))
	}
	return t, nil
}
