package exp_test

import (
	"testing"

	"vliwvp/internal/exp"
	"vliwvp/internal/machine"
	"vliwvp/internal/workload"
)

// prepare caches BenchData per benchmark+machine across tests in this
// package (Prepare runs two profiling passes; no need to repeat it).
var prepCache = map[string]*exp.BenchData{}

func prepare(t *testing.T, r *exp.Runner, b *workload.Benchmark) *exp.BenchData {
	t.Helper()
	key := r.D.Name + "/" + b.Name
	if bd, ok := prepCache[key]; ok {
		return bd
	}
	bd, err := r.Prepare(b)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", b.Name, err)
	}
	prepCache[key] = bd
	return bd
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	// Paper Table 2: roughly half of execution time sits in blocks where
	// every prediction hit; all-wrong blocks are a very small fraction.
	r := exp.NewRunner(machine.W4)
	var bestSum, worstSum float64
	for _, b := range workload.All() {
		bd := prepare(t, r, b)
		row := exp.Table2(bd)
		if row.BestFrac < 0 || row.BestFrac > 1 || row.WorstFrac < 0 || row.WorstFrac > 1 {
			t.Errorf("%s: fractions out of range: %+v", b.Name, row)
		}
		if row.BestFrac == 0 {
			t.Errorf("%s: no execution time in all-correct speculated blocks", b.Name)
		}
		if row.WorstFrac > row.BestFrac {
			t.Errorf("%s: worst fraction %v exceeds best %v — predictors above threshold should mostly hit",
				b.Name, row.WorstFrac, row.BestFrac)
		}
		bestSum += row.BestFrac
		worstSum += row.WorstFrac
	}
	avgBest, avgWorst := bestSum/8, worstSum/8
	if avgBest < 0.25 {
		t.Errorf("average best fraction %v, want a substantial share (paper ~0.5)", avgBest)
	}
	if avgWorst > 0.10 {
		t.Errorf("average worst fraction %v, want small (paper: 'very small fraction')", avgWorst)
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	// Paper Table 3: best case reduces schedule length ~20% on average;
	// worst case stays close to 1.0 thanks to the parallel compensation
	// engine.
	r := exp.NewRunner(machine.W4)
	var bestSum float64
	improved := 0
	for _, b := range workload.All() {
		bd := prepare(t, r, b)
		row, err := exp.Table3(bd)
		if err != nil {
			t.Fatal(err)
		}
		if row.Best > 1.001 {
			t.Errorf("%s: best-case ratio %v > 1 — prediction lengthened the schedule", b.Name, row.Best)
		}
		if row.Best < 0.3 {
			t.Errorf("%s: best-case ratio %v implausibly low", b.Name, row.Best)
		}
		if row.Worst < row.Best-1e-9 {
			t.Errorf("%s: worst %v better than best %v", b.Name, row.Worst, row.Best)
		}
		if row.Worst > 1.35 {
			t.Errorf("%s: worst-case ratio %v — compensation is not overlapping", b.Name, row.Worst)
		}
		if row.Measured < row.Best-1e-9 || row.Measured > row.Worst+1e-9 {
			t.Errorf("%s: measured %v outside [best %v, worst %v]", b.Name, row.Measured, row.Best, row.Worst)
		}
		if row.Best < 0.99 {
			improved++
		}
		bestSum += row.Best
	}
	if improved < 6 {
		t.Errorf("only %d/8 benchmarks improved their best-case schedules", improved)
	}
	if avg := bestSum / 8; avg > 0.95 {
		t.Errorf("average best-case ratio %v, want visible reduction (paper ~0.8)", avg)
	}
}

func TestFigure8ShapeMatchesPaper(t *testing.T) {
	// Paper Figure 8: a large percentage of executed blocks improve by 1-4
	// cycles in the all-correct case.
	r := exp.NewRunner(machine.W4)
	overall := 0.0
	oneToFour := 0.0
	for _, b := range workload.All() {
		bd := prepare(t, r, b)
		h, err := exp.Figure8(bd)
		if err != nil {
			t.Fatal(err)
		}
		overall += h.Total
		// Buckets: degraded, 0, 1-2, 3-4, 5-8, >8.
		oneToFour += h.Buckets[2].Count + h.Buckets[3].Count
		if h.Total == 0 {
			t.Errorf("%s: empty distribution", b.Name)
		}
	}
	if frac := oneToFour / overall; frac < 0.25 {
		t.Errorf("1-4 cycle improvement share = %v, want the dominant improvement range", frac)
	}
}

func TestTable4WiderMachineGainsMore(t *testing.T) {
	// Paper Table 4 / §3: "the improvement in block schedule length is
	// higher for the wider machine."
	r4 := exp.NewRunner(machine.W4)
	r8 := exp.NewRunner(machine.W8)
	var imp4, imp8 float64
	for _, b := range workload.All() {
		bd4 := prepare(t, r4, b)
		bd8 := prepare(t, r8, b)
		t3a, err := exp.Table3(bd4)
		if err != nil {
			t.Fatal(err)
		}
		t3b, err := exp.Table3(bd8)
		if err != nil {
			t.Fatal(err)
		}
		imp4 += 1 - t3a.Best
		imp8 += 1 - t3b.Best
	}
	if imp8 < imp4 {
		t.Errorf("aggregate 8-wide improvement %v < 4-wide %v", imp8, imp4)
	}
}

func TestBaselineComparisonShape(t *testing.T) {
	// §3: the static-compensation-block scheme spends more time in
	// compensation than ours on every benchmark, grows the code image, and
	// never beats our effective schedule.
	r := exp.NewRunner(machine.W4)
	for _, b := range workload.All() {
		bd := prepare(t, r, b)
		row, err := r.CompareBaseline(bd, exp.DefaultICache)
		if err != nil {
			t.Fatal(err)
		}
		if row.CompFracBase < row.CompFracOurs-1e-9 {
			t.Errorf("%s: baseline comp %v < ours %v", b.Name, row.CompFracBase, row.CompFracOurs)
		}
		if row.CodeGrowthInstrs <= 0 {
			t.Errorf("%s: baseline added no code", b.Name)
		}
		if row.SchedRatioBase < row.SchedRatioOurs-1e-9 {
			t.Errorf("%s: baseline schedule ratio %v beats ours %v", b.Name, row.SchedRatioBase, row.SchedRatioOurs)
		}
		if row.ICacheMissBase < row.ICacheMissOurs-1e-9 {
			t.Errorf("%s: baseline icache miss %v below ours %v — compensation blocks must not improve locality",
				b.Name, row.ICacheMissBase, row.ICacheMissOurs)
		}
	}
}

func TestDynamicSpeedupEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full dynamic simulation in -short mode")
	}
	// One integer and one FP benchmark end to end (the full sweep is
	// BenchmarkDynamicSpeedup).
	r := exp.NewRunner(machine.W4)
	for _, b := range []*workload.Benchmark{workload.M88ksim, workload.Hydro2d} {
		row, err := r.Speedup(b)
		if err != nil {
			t.Fatal(err)
		}
		if row.Speedup <= 1.0 {
			t.Errorf("%s: dynamic speedup %.3f, want > 1", b.Name, row.Speedup)
		}
		if row.Predictions == 0 {
			t.Errorf("%s: no dynamic predictions", b.Name)
		}
		t.Logf("%s: %.3fx (%d -> %d cycles), %d/%d mispredicts",
			b.Name, row.Speedup, row.BaseCycles, row.SpecCycles, row.Mispredicts, row.Predictions)
	}
}

func TestRenderersProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("renderers re-prepare all benchmarks")
	}
	r := exp.NewRunner(machine.W4)
	tb2, rows2, err := exp.RenderTable2(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 8 || len(tb2.Rows) != 9 { // 8 benchmarks + average
		t.Errorf("table2: %d rows rendered", len(tb2.Rows))
	}
	if tb2.String() == "" {
		t.Error("empty rendering")
	}
	tb8, h, err := exp.RenderFigure8(r)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total == 0 || len(tb8.Rows) != 9 {
		t.Errorf("figure8 render wrong: total %v, rows %d", h.Total, len(tb8.Rows))
	}
}

func TestSerialBaselineCorrectAndNeverFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic simulations")
	}
	// The serial-recovery machine ([4]) must produce identical
	// architectural results (SpeedupSerial validates against the
	// interpreter internally) and can never beat the dual-engine machine:
	// its recovery blocks serialize in front of the main engine.
	r := exp.NewRunner(machine.W4)
	for _, w := range []*workload.Benchmark{workload.Compress, workload.Vortex, workload.M88ksim} {
		serial, err := r.SpeedupSerial(w)
		if err != nil {
			t.Fatal(err)
		}
		ours, err := r.Speedup(w)
		if err != nil {
			t.Fatal(err)
		}
		if serial.SpecCycles < ours.SpecCycles {
			t.Errorf("%s: serial recovery %d cycles beats parallel %d", w.Name, serial.SpecCycles, ours.SpecCycles)
		}
		if serial.Mispredicts == 0 {
			t.Errorf("%s: serial run saw no mispredictions; comparison vacuous", w.Name)
		}
		t.Logf("%s: serial %d vs parallel %d cycles (%.2f%% saved), %d recoveries",
			w.Name, serial.SpecCycles, ours.SpecCycles,
			100*(1-float64(ours.SpecCycles)/float64(serial.SpecCycles)), serial.Mispredicts)
	}
}
