// Package vliwvp is a from-scratch reproduction of "Value Prediction in
// VLIW Machines" (Nakra, Gupta, Soffa; 1999): a VLIW architecture with a
// value predictor and a second execution engine — the Compensation Code
// Engine — that re-executes mis-speculated operations in parallel with the
// statically scheduled VLIW code.
//
// The package is a façade over the full pipeline:
//
//	src := `...VL source...`
//	sys, _ := vliwvp.NewSystem(4)            // 4-wide machine
//	prog, _ := sys.Compile(src)              // parse, lower, optimize
//	golden, _ := prog.Interpret()            // sequential reference run
//	prof, _ := prog.Profile()                // value + frequency profiles
//	spec, _ := prog.Speculate(prof)          // LdPred/check transformation
//	base, _ := prog.Simulate()               // dual-engine, no prediction
//	fast, _ := spec.Simulate()               // dual-engine, with prediction
//	fmt.Println(base.Cycles, fast.Cycles, fast.Value == golden.Value)
//
// The experiment drivers that regenerate the paper's tables and figures are
// reachable through System.Experiments; the eight benchmark kernels through
// Benchmarks.
package vliwvp

import (
	"fmt"

	"vliwvp/internal/ddg"
	"vliwvp/internal/exp"
	"vliwvp/internal/ifconv"
	"vliwvp/internal/interp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/speculate"
	"vliwvp/internal/workload"
)

// System fixes a machine configuration and speculation policy.
type System struct {
	Machine *machine.Desc
	Config  speculate.Config
	// IfConvert applies Select-based if-conversion of small diamonds during
	// Compile (the predication half of the hyperblock extension).
	IfConvert bool
	// Regions applies profile-guided superblock formation during Compile
	// (trace growing with tail duplication).
	Regions bool
	// Mem selects the memory hierarchy simulations run under (nil = the
	// paper's flat model). Timing-only: architectural results never move.
	Mem *machine.MemConfig
}

// NewSystem returns a system for a stock machine width (2, 4, 8, or 16)
// with the paper's speculation settings (65% threshold, stride+FCM hybrid
// profiles, critical-path load selection).
func NewSystem(width int) (*System, error) {
	for _, d := range machine.Stock() {
		if d.Width == width {
			return &System{Machine: d, Config: speculate.DefaultConfig(d)}, nil
		}
	}
	return nil, fmt.Errorf("vliwvp: no stock %d-wide machine (have 2, 4, 8, 16)", width)
}

// MachineDesc exposes a stock machine description by name ("4-wide", ...).
func MachineDesc(name string) *machine.Desc { return machine.ByName(name) }

// Experiments returns the paper-experiment runner for this system.
func (s *System) Experiments() *exp.Runner {
	r := exp.NewRunner(s.Machine)
	r.Cfg = s.Config
	r.IfConvert = s.IfConvert
	r.Regions = s.Regions
	r.Mem = s.Mem
	return r
}

// compilePlan is the system's compile flow: lower, optimize, then the
// optional region passes (if-conversion, superblock formation). Every pass
// is validated by the pipeline manager at its historical checkpoints.
func (s *System) compilePlan() pipeline.Plan {
	passes := []pipeline.Pass{pipeline.Lower{}, pipeline.Opt{}}
	name := "compile"
	if s.IfConvert {
		passes = append(passes, pipeline.IfConvert{Cfg: ifconv.DefaultConfig()})
		name += "+ifconv"
	}
	if s.Regions {
		passes = append(passes, pipeline.Regions{Cfg: regions.DefaultConfig()})
		name += "+regions"
	}
	return pipeline.Plan{Name: name, Passes: passes}
}

// Compile parses VL source, lowers it to IR, optimizes it, and applies the
// system's optional region passes (if-conversion, superblock formation).
func (s *System) Compile(src string) (*Program, error) {
	ctx := &pipeline.Ctx{Source: src, Machine: s.Machine}
	if err := pipeline.NewManager().Run(s.compilePlan(), ctx); err != nil {
		return nil, err
	}
	return &Program{sys: s, IR: ctx.Prog}, nil
}

// CompileBenchmark compiles one of the built-in benchmark kernels. It is
// the same pipeline invocation as Compile, rooted at the kernel's source.
func (s *System) CompileBenchmark(name string) (*Program, error) {
	b := workload.ByName(name)
	if b == nil {
		return nil, fmt.Errorf("vliwvp: unknown benchmark %q", name)
	}
	p, err := s.Compile(b.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	return p, nil
}

// Benchmarks lists the built-in benchmark kernels (the paper's SPEC95
// stand-ins).
func Benchmarks() []*workload.Benchmark { return workload.All() }

// Program is a compiled program bound to a system.
type Program struct {
	sys *System
	IR  *ir.Program
}

// RunResult is the outcome of a sequential (interpreter) run.
type RunResult struct {
	Value  uint64
	Output []string
	DynOps int64
}

// Interpret executes main() sequentially — the golden reference model.
func (p *Program) Interpret() (*RunResult, error) {
	m := interp.New(p.IR)
	v, err := m.RunMain()
	if err != nil {
		return nil, err
	}
	return &RunResult{Value: v, Output: m.Output, DynOps: m.Steps}, nil
}

// Profile collects value predictability (stride and FCM rates per load)
// and block frequencies from one sequential run.
func (p *Program) Profile() (*profile.Profile, error) {
	return profile.Collect(p.IR, "main")
}

// Speculate applies the paper's transformation: select predictable loads,
// insert LdPred and check-prediction forms, mark speculative and
// non-speculative operations, and assign Synchronization-register bits.
func (p *Program) Speculate(prof *profile.Profile) (*SpecProgram, error) {
	plan := pipeline.Plan{Name: "speculate", Passes: []pipeline.Pass{
		pipeline.Speculate{Cfg: p.sys.Config},
	}}
	ctx := &pipeline.Ctx{Prog: p.IR, Prof: prof, Machine: p.sys.Machine}
	if err := pipeline.NewManager().Run(plan, ctx); err != nil {
		return nil, err
	}
	return &SpecProgram{sys: p.sys, Res: ctx.Spec}, nil
}

// SimResult is the outcome of a dual-engine simulation.
type SimResult struct {
	Value  uint64
	Output []string
	Cycles int64
	Instrs int64
	Ops    int64
	// Prediction activity (zero for unspeculated programs).
	Predictions int64
	Mispredicts int64
	// Suppressed and SuppressedWrong count issues the runtime confidence
	// gate held back (zero unless the system's predictor config enables
	// gating with a conf= threshold).
	Suppressed      int64
	SuppressedWrong int64
	CCEExecuted     int64
	CCEFlushed      int64
	StallSync       int64
	// Control-speculation activity (all zero unless the system's
	// ControlConfig binds a dynamic branch predictor).
	BranchPredicts    int64
	BranchMispredicts int64
	BranchFlushed     int64
	StallRedirect     int64
	// MaxCCBOccupancy is the peak in-flight Compensation Code Buffer depth.
	MaxCCBOccupancy int
	// Memory-hierarchy activity (all zero under the flat model).
	DMisses     int64
	IMisses     int64
	StallIFetch int64
	PrefIssued  int64
	PrefUseful  int64
}

// Simulate runs the unspeculated program on the VLIW machine (the baseline
// for speedups).
func (p *Program) Simulate() (*SimResult, error) {
	return simulate(p.sys, p.IR, nil)
}

// SpecProgram is a value-speculated program.
type SpecProgram struct {
	sys *System
	Res *speculate.Result
}

// Sites returns the selected prediction sites.
func (sp *SpecProgram) Sites() []*speculate.Site { return sp.Res.Sites }

// Simulate runs the transformed program on the dual-engine machine with
// live predictor tables.
func (sp *SpecProgram) Simulate() (*SimResult, error) {
	schemes := map[int]profile.Scheme{}
	for _, site := range sp.Res.Sites {
		schemes[site.ID] = site.Scheme
	}
	return simulate(sp.sys, sp.Res.Prog, schemes)
}

func simulate(s *System, prog *ir.Program, schemes map[int]profile.Scheme) (*SimResult, error) {
	r := exp.NewRunner(s.Machine)
	r.Cfg = s.Config
	r.DDG = ddg.Options{}
	r.Mem = s.Mem
	sim, err := r.NewSimulatorFor(prog, schemes)
	if err != nil {
		return nil, err
	}
	v, err := sim.Run("main")
	if err != nil {
		return nil, err
	}
	return &SimResult{
		Value:             v,
		Output:            sim.Output,
		Cycles:            sim.Cycles,
		Instrs:            sim.Instrs,
		Ops:               sim.Ops,
		Predictions:       sim.Predictions,
		Mispredicts:       sim.Mispredicts,
		Suppressed:        sim.Suppressed,
		SuppressedWrong:   sim.SuppressedWrong,
		CCEExecuted:       sim.CCEExecuted,
		CCEFlushed:        sim.CCEFlushed,
		StallSync:         sim.StallSync,
		BranchPredicts:    sim.BranchPredicts,
		BranchMispredicts: sim.BranchMispredicts,
		BranchFlushed:     sim.BranchFlushed,
		StallRedirect:     sim.StallRedirect,
		MaxCCBOccupancy:   sim.MaxCCBOccupancy,
		DMisses:           sim.DMisses,
		IMisses:           sim.IMisses,
		StallIFetch:       sim.StallIFetch,
		PrefIssued:        sim.PrefIssued,
		PrefUseful:        sim.PrefUseful,
	}, nil
}
