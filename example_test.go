package vliwvp_test

import (
	"fmt"
	"log"

	"vliwvp"
)

// Example walks the whole pipeline on a small strided kernel: the golden
// sequential run, value profiling, the LdPred/check transformation, and
// dual-engine execution with live predictors.
func Example() {
	const src = `
var a[128]
func main() {
	for var i = 0; i < 128; i = i + 1 { a[i] = i * 4 }
	var s = 0
	for var i = 0; i < 128; i = i + 1 {
		var x = a[i]
		s = s + x * 3 - (x >> 1)
	}
	return s
}`
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := prog.Interpret()
	if err != nil {
		log.Fatal(err)
	}
	prof, err := prog.Profile()
	if err != nil {
		log.Fatal(err)
	}
	spec, err := prog.Speculate(prof)
	if err != nil {
		log.Fatal(err)
	}
	fast, err := spec.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sites selected:", len(spec.Sites()) > 0)
	fmt.Println("architecturally identical:", fast.Value == golden.Value)
	// Output:
	// sites selected: true
	// architecturally identical: true
}

// ExampleSystem_CompileBenchmark runs a built-in SPEC95 stand-in kernel on
// the sequential golden model.
func ExampleSystem_CompileBenchmark() {
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.CompileBenchmark("m88ksim")
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Interpret()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deterministic checksum:", res.Value)
	// Output:
	// deterministic checksum: 318876
}

// ExampleBenchmarks lists the benchmark suite.
func ExampleBenchmarks() {
	for _, b := range vliwvp.Benchmarks() {
		fmt.Println(b.Name)
	}
	// Output:
	// compress
	// ijpeg
	// li
	// m88ksim
	// vortex
	// hydro2d
	// swim
	// tomcatv
}
