// Command regionsdemo demonstrates the extension the paper anticipates in
// §3 — "For larger regions such as hyperblocks and superblocks, we expect
// to see a further improvement": profile-guided superblock formation (trace
// growing with tail duplication) before value speculation. It shows the CFG
// before and after formation on a biased-branch loop and the end-to-end
// cycle gain on two benchmark kernels.
package main

import (
	"fmt"
	"log"

	"vliwvp/internal/exp"
	"vliwvp/internal/ir"
	"vliwvp/internal/lang"
	"vliwvp/internal/machine"
	"vliwvp/internal/opt"
	"vliwvp/internal/profile"
	"vliwvp/internal/regions"
	"vliwvp/internal/workload"
)

const demoSrc = `
var a[256]
func main() {
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i] * 3
		if i % 8 != 0 {
			x = x + 7        # hot arm: taken 7 of 8 iterations
		} else {
			x = x - 100      # cold arm
		}
		a[i] = x             # join block: two predecessors
		s = s + x
	}
	return s
}`

func main() {
	prog, err := lang.Compile(demoSrc)
	if err != nil {
		log.Fatal(err)
	}
	opt.Optimize(prog)

	fmt.Println("=== CFG before region formation ===")
	printCFG(prog)

	prof, err := profile.Collect(prog, "main")
	if err != nil {
		log.Fatal(err)
	}
	stats := regions.Form(prog, prof, regions.DefaultConfig())
	fmt.Printf("\nformation: %d straight-line merges, %d tail duplications (+%d ops)\n\n",
		stats["main"].Merged, stats["main"].Duplicated, stats["main"].GrownOps)

	fmt.Println("=== CFG after region formation ===")
	printCFG(prog)
	fmt.Println(`
The hot if-arm absorbed its own copy of the join and loop-increment code
(tail duplication), producing a long single-entry trace; the cold arm keeps
the original join. Longer traces expose more of the dependence chain to the
value-speculation pass and delete branch boundaries outright.`)

	fmt.Println("=== End-to-end effect on benchmark kernels (4-wide) ===")
	base := exp.NewRunner(machine.W4)
	reg := exp.NewRunner(machine.W4)
	reg.Regions = true
	fmt.Printf("%-10s %22s %22s %8s\n", "benchmark", "spec cycles (blocks)", "spec cycles (regions)", "gain")
	for _, name := range []string{"compress", "vortex"} {
		w := workload.ByName(name)
		rb, err := base.Speedup(w)
		if err != nil {
			log.Fatal(err)
		}
		rr, err := reg.Speedup(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %22d %22d %7.3fx\n", name, rb.SpecCycles, rr.SpecCycles,
			float64(rb.SpecCycles)/float64(rr.SpecCycles))
	}
	fmt.Println("\nBoth runs validate bit-for-bit against the sequential interpreter.")
}

func printCFG(prog *ir.Program) {
	f := prog.Func("main")
	for _, b := range f.Blocks {
		term := "-"
		if t := b.Terminator(); t != nil {
			term = t.Code.String()
		}
		fmt.Printf("  b%-2d %3d ops  ends %-4s  -> %v"+"\n", b.ID, len(b.Ops), term, b.Succs)
	}
}
