// Command predictors compares the value-prediction schemes of the paper's
// profiling pass — last-value, two-delta stride, order-2 FCM, and the
// hybrid — on characteristic value streams and on the real load streams of
// a benchmark, showing why the paper profiles with max(stride, FCM).
package main

import (
	"fmt"
	"log"
	"sort"

	"vliwvp"
	"vliwvp/internal/predict"
)

func main() {
	fmt.Println("=== Synthetic value streams ===")
	streams := []struct {
		name string
		gen  func(i int) uint64
	}{
		{"constant", func(i int) uint64 { return 42 }},
		{"stride +8", func(i int) uint64 { return uint64(i * 8) }},
		{"period-3 pattern", func(i int) uint64 { return [3]uint64{7, 99, 3}[i%3] }},
		{"alternating runs", func(i int) uint64 {
			if (i/16)%2 == 0 {
				return uint64(i % 16)
			}
			return 500
		}},
		{"pseudo-random", func(i int) uint64 { return uint64(i*2654435761) % 1009 }},
	}
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "stream", "last", "stride", "fcm", "hybrid")
	for _, s := range streams {
		vals := make([]uint64, 2000)
		for i := range vals {
			vals[i] = s.gen(i)
		}
		fmt.Printf("%-18s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", s.name,
			100*predict.MeasureRate(predict.NewLastValue(), vals),
			100*predict.MeasureRate(predict.NewStride(), vals),
			100*predict.MeasureRate(predict.NewFCM(predict.DefaultFCMOrder, predict.DefaultFCMTableBits), vals),
			100*predict.MeasureRate(predict.NewHybrid(predict.DefaultFCMOrder, predict.DefaultFCMTableBits), vals))
	}

	fmt.Println("\n=== Load sites of the li benchmark (cons-cell interpreter) ===")
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.CompileBenchmark("li")
	if err != nil {
		log.Fatal(err)
	}
	prof, err := prog.Profile()
	if err != nil {
		log.Fatal(err)
	}
	type row struct {
		fn          string
		op          int
		count       int64
		stride, fcm float64
	}
	var rows []row
	for k, lp := range prof.Loads {
		if lp.Count < 500 {
			continue
		}
		rows = append(rows, row{k.Func, k.OpID, lp.Count, lp.StrideRate, lp.FCMRate})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Printf("%-12s %6s %10s %8s %8s %8s  %s\n", "function", "op", "executions", "stride", "fcm", "max", "selected predictor")
	for _, r := range rows {
		best := r.stride
		name := "stride"
		if r.fcm > best {
			best, name = r.fcm, "fcm"
		}
		sel := name
		if best < 0.65 {
			sel = "- (below 65% threshold)"
		}
		fmt.Printf("%-12s %6d %10d %7.1f%% %7.1f%% %7.1f%%  %s\n",
			r.fn, r.op, r.count, 100*r.stride, 100*r.fcm, 100*best, sel)
	}
	fmt.Println("\nThe paper's profiling pass keeps, per load, the higher of the stride and")
	fmt.Println("FCM rates and predicts only loads at or above the 65% threshold.")
}
