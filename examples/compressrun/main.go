// Command compressrun pushes the compress benchmark (the paper's first
// table row) through the whole public pipeline: compile, sequential golden
// run, value profiling, speculation, and dual-engine simulation with and
// without prediction — printing the selected sites and the resulting
// speedup.
package main

import (
	"fmt"
	"log"

	"vliwvp"
)

func main() {
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := sys.CompileBenchmark("compress")
	if err != nil {
		log.Fatal(err)
	}

	golden, err := prog.Interpret()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden run: checksum %d over %d dynamic operations\n\n", int64(golden.Value), golden.DynOps)

	prof, err := prog.Profile()
	if err != nil {
		log.Fatal(err)
	}
	spec, err := prog.Speculate(prof)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d prediction sites (threshold 0.65, max(stride, FCM) profile):\n", len(spec.Sites()))
	for _, site := range spec.Sites() {
		fmt.Printf("  site %d: %s block %d, load op %d, %s predictor, profiled rate %.2f\n",
			site.ID, site.Func, site.Block, site.LoadOpID, site.Scheme, site.Rate)
	}
	fmt.Println()

	base, err := prog.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	fast, err := spec.Simulate()
	if err != nil {
		log.Fatal(err)
	}
	if base.Value != golden.Value || fast.Value != golden.Value {
		log.Fatalf("simulation diverged from the golden run: %d / %d vs %d",
			base.Value, fast.Value, golden.Value)
	}

	fmt.Printf("without prediction: %8d cycles (%d long instructions)\n", base.Cycles, base.Instrs)
	fmt.Printf("with prediction:    %8d cycles — %.3fx speedup\n", fast.Cycles,
		float64(base.Cycles)/float64(fast.Cycles))
	fmt.Printf("predictions: %d (%d mispredicted, %.1f%%)\n", fast.Predictions, fast.Mispredicts,
		100*float64(fast.Mispredicts)/float64(fast.Predictions))
	fmt.Printf("compensation engine: %d operations re-executed, %d flushed as correct\n",
		fast.CCEExecuted, fast.CCEFlushed)
	fmt.Println("\narchitectural state verified identical to the sequential run.")
}
