// Command widthsweep reproduces the paper's issue-width observation (§3,
// Table 4): the benefit of value prediction grows with machine width. It
// runs one integer and one floating-point benchmark end to end on every
// stock machine and prints the per-width speedups and best-case
// schedule-length ratios.
package main

import (
	"fmt"
	"log"

	"vliwvp"
	"vliwvp/internal/exp"
	"vliwvp/internal/machine"
	"vliwvp/internal/workload"
)

func main() {
	names := []string{"m88ksim", "hydro2d"}
	fmt.Printf("%-10s %-8s %12s %12s %9s %11s\n",
		"benchmark", "machine", "base cycles", "spec cycles", "speedup", "sched ratio")
	for _, name := range names {
		for _, width := range []int{2, 4, 8, 16} {
			sys, err := vliwvp.NewSystem(width)
			if err != nil {
				log.Fatal(err)
			}
			r := sys.Experiments()
			row, err := r.Speedup(workload.ByName(name))
			if err != nil {
				log.Fatal(err)
			}
			bd, err := r.Prepare(workload.ByName(name))
			if err != nil {
				log.Fatal(err)
			}
			t3, err := exp.Table3(bd)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-8s %12d %12d %8.3fx %11.2f\n",
				name, machineName(width), row.BaseCycles, row.SpecCycles, row.Speedup, t3.Best)
		}
		fmt.Println()
	}
	fmt.Println("Wider machines leave more empty slots for LdPred/check operations and")
	fmt.Println("expose more parallelism for speculated chains — the improvement from")
	fmt.Println("value prediction grows with width, as the paper's Table 4 reports.")
}

func machineName(width int) string {
	for _, d := range machine.Stock() {
		if d.Width == width {
			return d.Name
		}
	}
	return fmt.Sprintf("%d-wide", width)
}
