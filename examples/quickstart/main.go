// Command quickstart walks the paper's worked example (Figures 2, 3, and
// 7): the 11-operation dependence graph with two latency-3 loads, scheduled
// without and with value prediction, then played on the dual-engine timing
// model under every combination of prediction outcomes, with the
// cycle-by-cycle Compensation Code Engine narrative.
package main

import (
	"fmt"
	"log"

	"vliwvp/internal/core"
	"vliwvp/internal/ddg"
	"vliwvp/internal/machine"
	"vliwvp/internal/profile"
	"vliwvp/internal/sched"
	"vliwvp/internal/speculate"
)

func main() {
	d := machine.W4
	prog, f, err := core.PaperExample()
	if err != nil {
		log.Fatal(err)
	}
	l4, l7 := core.PaperExampleLoadIDs(f)

	fmt.Println("=== Figure 2: the dependence graph, scheduled without prediction ===")
	orig := f.Blocks[0]
	og := ddg.Build(orig, d.Latency, ddg.Options{})
	os := sched.ScheduleBlock(orig, og, d)
	printSchedule(os)
	fmt.Printf("schedule length: %d cycles (critical path %d)\n\n", os.Length(), og.CriticalLength)

	// Both loads profiled highly predictable, exactly as the example assumes.
	prof := &profile.Profile{
		Loads: map[profile.LoadKey]*profile.LoadProfile{
			{Func: "example", OpID: l4}: {Count: 1000, StrideRate: 0.9},
			{Func: "example", OpID: l7}: {Count: 1000, StrideRate: 0.9},
		},
		BlockFreq: map[profile.BlockKey]int64{{Func: "example", Block: 0}: 1000},
	}
	cfg := speculate.DefaultConfig(d)
	cfg.CriticalOnly = false
	res, err := speculate.Transform(prog, prof, cfg)
	if err != nil {
		log.Fatal(err)
	}

	spec := res.Prog.Func("example").Blocks[0]
	sg := speculate.BuildGraph(spec, d, ddg.Options{})
	ss := sched.ScheduleBlock(spec, sg, d)
	an, err := core.Analyze(spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Figure 3(a): the schedule with both loads predicted ===")
	printSchedule(ss)
	fmt.Println()

	cases := []struct {
		mask uint32
		name string
	}{
		{an.FullMask(), "Figure 3(b): both predictions correct"},
		{0b01, "Figure 3(c): second load mispredicted"},
		{0b10, "Figure 3(d): first load mispredicted"},
		{0b00, "Figure 3(e): both loads mispredicted"},
	}
	for _, c := range cases {
		fmt.Printf("=== %s ===\n", c.name)
		tm := core.NewTiming(d)
		tm.Trace = func(cycle int, event string) {
			fmt.Printf("  cycle %2d: %s\n", cycle, event)
		}
		r, err := tm.SimulateBlock(ss, an, c.mask)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  -> effective length %d cycles (original %d), %d compensation ops executed, %d flushed\n\n",
			r.Length, os.Length(), r.CCEExecuted, r.CCEFlushed)
	}
}

func printSchedule(s *sched.BlockSched) {
	for c, in := range s.Instrs {
		for _, op := range in.Ops {
			fmt.Printf("  cycle %2d: %v\n", c, op)
		}
		if in.WaitBits != 0 {
			fmt.Printf("  cycle %2d: [instruction waits on Synchronization bits %#x]\n", c, in.WaitBits)
		}
	}
}
