module vliwvp

go 1.22
