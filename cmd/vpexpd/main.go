// Command vpexpd is the compile-and-simulate daemon: an HTTP/JSON
// service over the vliwvp pipeline. Clients POST VL programs (inline
// source, stock benchmarks, or progen seeds) plus machine/config grids
// to /v1/run; the daemon compiles through the pass-manager pipeline
// (coalescing identical concurrent compiles into one), executes each
// grid cell on pooled decoded-engine simulators, and answers with
// schedules, cycle counts, stats snapshots, and optionally a streamed
// NDJSON event trace.
//
// Usage:
//
//	vpexpd [-addr :8642] [-workers N] [-queue N] [budget flags]
//	vpexpd -selfcheck [-sc-concurrency N] [-sc-duration 2s] [-sc-rps N]
//	        [-sc-cold 0.1] [-sc-seed 1]
//
// The budget flags bound what a single request may ask for; see
// internal/serve.Budgets for the rejection contract each maps to.
//
// On SIGTERM/SIGINT the daemon drains: admission stops (healthz flips to
// 503 so load balancers stop routing), in-flight requests complete,
// queued ones are answered 503 with Retry-After, and the process exits
// after the listener shuts down — nonzero if the pooled simulators fail
// their quiescence check.
//
// -selfcheck runs the in-process load harness (internal/serve/loadtest)
// against a fresh server instead of listening: a short mixed
// cached/cold workload whose report must show zero dropped in-budget
// requests and zero result mismatches. It exercises the same handler,
// queue, and worker pool the daemon serves with, so it doubles as a
// smoke test of a build before deployment.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vliwvp/internal/serve"
	"vliwvp/internal/serve/loadtest"
)

func main() {
	var (
		addr         = flag.String("addr", ":8642", "listen address")
		workers      = flag.Int("workers", 0, "executor goroutines (0 = NumCPU)")
		queue        = flag.Int("queue", 0, "max queued requests beyond executing ones (0 = default)")
		maxBody      = flag.Int64("max-body", 0, "max request body bytes (0 = default)")
		maxSource    = flag.Int("max-source", 0, "max inline program bytes (0 = default)")
		maxCells     = flag.Int("max-cells", 0, "max machines x configs per request (0 = default)")
		maxCycles    = flag.Int64("max-cycles", 0, "max simulated cycles per cell (0 = default)")
		maxArgs      = flag.Int("max-args", 0, "max entry arguments (0 = default)")
		cacheEntries = flag.Int("cache-entries", 0, "compile-cache entry budget before flush (0 = default)")
		drainWait    = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")

		selfcheck = flag.Bool("selfcheck", false, "run the in-process load harness and exit")
		scConc    = flag.Int("sc-concurrency", 8, "selfcheck client goroutines")
		scDur     = flag.Duration("sc-duration", 2*time.Second, "selfcheck duration")
		scRPS     = flag.Int("sc-rps", 0, "selfcheck paced arrival rate (0 = closed loop)")
		scCold    = flag.Float64("sc-cold", 0.05, "selfcheck fraction of uncached-compile requests")
		scSeed    = flag.Int64("sc-seed", 1, "selfcheck progen seed")
	)
	flag.Parse()

	budgets := serve.Budgets{
		MaxBodyBytes:    *maxBody,
		MaxSourceBytes:  *maxSource,
		MaxCells:        *maxCells,
		MaxCycles:       *maxCycles,
		MaxArgs:         *maxArgs,
		Workers:         *workers,
		MaxQueue:        *queue,
		MaxCacheEntries: *cacheEntries,
	}
	srv := serve.New(budgets)

	if *selfcheck {
		os.Exit(runSelfcheck(srv, loadtest.Config{
			Concurrency: *scConc,
			Duration:    *scDur,
			RPS:         *scRPS,
			ColdFrac:    *scCold,
			Seed:        *scSeed,
		}, *drainWait))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "vpexpd: listening on %s (workers=%d queue=%d)\n",
		*addr, srv.Budgets().Workers, srv.Budgets().MaxQueue)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "vpexpd: serve: %v\n", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "vpexpd: %v: draining (timeout %v)\n", sig, *drainWait)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vpexpd: drain: %v\n", err)
		code = 1
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vpexpd: http shutdown: %v\n", err)
		code = 1
	}
	if err := srv.CheckQuiescent(); err != nil {
		fmt.Fprintf(os.Stderr, "vpexpd: quiescence: %v\n", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "vpexpd: shut down cleanly")
	os.Exit(code)
}

// runSelfcheck exercises the serving spine in-process and reports.
func runSelfcheck(srv *serve.Server, cfg loadtest.Config, drainWait time.Duration) int {
	fmt.Fprintf(os.Stderr, "vpexpd selfcheck: concurrency=%d duration=%v rps=%d cold=%.2f seed=%d\n",
		cfg.Concurrency, cfg.Duration, cfg.RPS, cfg.ColdFrac, cfg.Seed)
	rep := loadtest.Run(srv, cfg)
	fmt.Println(rep.String())

	ctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "vpexpd selfcheck: shutdown: %v\n", err)
		return 1
	}
	if err := srv.CheckQuiescent(); err != nil {
		fmt.Fprintf(os.Stderr, "vpexpd selfcheck: quiescence: %v\n", err)
		return 1
	}
	if err := rep.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "vpexpd selfcheck: FAIL: %v\n", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "vpexpd selfcheck: OK")
	return 0
}
