// Command benchdiff compares two vliwvp perf records (written by
// `vpexp -bench-json`) and exits nonzero when the new record regresses
// past tolerance — the CI bench gate.
//
// Usage:
//
//	benchdiff -baseline bench/baseline.json -new BENCH_2.json [-tol 0.10] [-wall-tol 0]
//
// Simulated cycles and allocation counts are deterministic for a given Go
// release, so they gate at -tol (default 10%). Wall time depends on the
// host and is ignored unless -wall-tol is set > 0. Only regressions fail;
// improvements are reported and pass. An entry present in the baseline
// but missing from the new record fails (a silently dropped benchmark is
// a gate escape); new entries absent from the baseline are reported and
// pass.
//
// Absolute gates ride on top of the relative comparison, all evaluated
// within the new record alone (so they hold on any host):
// sim/decoded-grid and sim/cached-grid must report zero allocations per
// run — the decode-once engine's steady-state pooling contract, with and
// without the memory hierarchy — sim/cached-grid must cost more cycles
// than the flat grid (a hierarchy that charges nothing is miswired), and
// the sim/legacy-grid to sim/decoded-grid wall-time ratio must stay at or
// above -engine-speedup (default 2.0), since both rows are measured
// back-to-back on the same machine over identical compile products.
package main

import (
	"flag"
	"fmt"
	"os"

	"vliwvp/internal/exp"
)

func load(path string) (*exp.BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return exp.ReadBenchRecord(f)
}

// check compares one metric and returns a failure line, an info line, or
// neither. tol <= 0 disables the check.
func check(name, metric string, base, now int64, tol float64) (fail, info string) {
	if tol <= 0 || base <= 0 {
		return "", ""
	}
	delta := float64(now-base) / float64(base)
	switch {
	case delta > tol:
		return fmt.Sprintf("FAIL %-22s %-14s %12d -> %12d  (%+.1f%% > %.0f%% tolerance)",
			name, metric, base, now, delta*100, tol*100), ""
	case delta < -tol:
		return "", fmt.Sprintf("ok   %-22s %-14s %12d -> %12d  (improved %+.1f%%)",
			name, metric, base, now, delta*100)
	default:
		return "", ""
	}
}

func main() {
	basePath := flag.String("baseline", "bench/baseline.json", "committed baseline perf record")
	newPath := flag.String("new", "", "freshly measured perf record to gate")
	tol := flag.Float64("tol", 0.10, "relative tolerance for cycles and allocations")
	wallTol := flag.Float64("wall-tol", 0, "relative tolerance for wall time (0 = ignore wall time)")
	engineSpeedup := flag.Float64("engine-speedup", 2.0,
		"minimum legacy/decoded wall-time ratio within the new record (0 = skip)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}

	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	now, err := load(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: new record: %v\n", err)
		os.Exit(2)
	}
	if base.GoVersion != now.GoVersion {
		fmt.Printf("note: go versions differ (baseline %s, new %s); allocation counts may shift\n",
			base.GoVersion, now.GoVersion)
	}

	var fails []string
	for _, be := range base.Entries {
		ne := now.Entry(be.Name)
		if ne == nil {
			fails = append(fails, fmt.Sprintf("FAIL %-22s missing from new record", be.Name))
			continue
		}
		for _, c := range []struct {
			metric    string
			base, now int64
			tol       float64
		}{
			{"cycles", be.Cycles, ne.Cycles, *tol},
			{"allocs_per_op", be.AllocsPerOp, ne.AllocsPerOp, *tol},
			{"wall_ns", be.WallNS, ne.WallNS, *wallTol},
		} {
			fail, info := check(be.Name, c.metric, c.base, c.now, c.tol)
			if fail != "" {
				fails = append(fails, fail)
			}
			if info != "" {
				fmt.Println(info)
			}
		}
	}
	for _, ne := range now.Entries {
		if base.Entry(ne.Name) == nil {
			fmt.Printf("note: new entry %s (no baseline; not gated)\n", ne.Name)
		}
	}

	// Absolute gates on the engine-comparison rows of the new record.
	if dec := now.Entry("sim/decoded-grid"); dec != nil {
		if dec.AllocsPerOp != 0 {
			fails = append(fails, fmt.Sprintf(
				"FAIL %-22s %-14s %12d allocs (decoded engine must be allocation-free in steady state)",
				dec.Name, "allocs_per_op", dec.AllocsPerOp))
		}
		if cached := now.Entry("sim/cached-grid"); cached != nil {
			if cached.AllocsPerOp != 0 {
				fails = append(fails, fmt.Sprintf(
					"FAIL %-22s %-14s %12d allocs (memory hierarchy must not break steady-state pooling)",
					cached.Name, "allocs_per_op", cached.AllocsPerOp))
			}
			if cached.Cycles <= dec.Cycles {
				fails = append(fails, fmt.Sprintf(
					"FAIL %-22s %-14s %12d cycles not above flat grid %d (hierarchy charged nothing)",
					cached.Name, "cycles", cached.Cycles, dec.Cycles))
			}
		}
		if br := now.Entry("sim/branch-grid"); br != nil {
			if br.AllocsPerOp != 0 {
				fails = append(fails, fmt.Sprintf(
					"FAIL %-22s %-14s %12d allocs (branch predictor must not break steady-state pooling)",
					br.Name, "allocs_per_op", br.AllocsPerOp))
			}
			if br.Cycles <= dec.Cycles {
				fails = append(fails, fmt.Sprintf(
					"FAIL %-22s %-14s %12d cycles not above flat grid %d (control speculation charged nothing)",
					br.Name, "cycles", br.Cycles, dec.Cycles))
			}
		}
		if leg := now.Entry("sim/legacy-grid"); leg != nil && *engineSpeedup > 0 && dec.WallNS > 0 {
			ratio := float64(leg.WallNS) / float64(dec.WallNS)
			if ratio < *engineSpeedup {
				fails = append(fails, fmt.Sprintf(
					"FAIL %-22s %-14s %.2fx legacy/decoded wall ratio (< %.2fx floor)",
					dec.Name, "wall_ratio", ratio, *engineSpeedup))
			} else {
				fmt.Printf("ok   %-22s %-14s %.2fx legacy/decoded wall ratio (>= %.2fx floor)\n",
					dec.Name, "wall_ratio", ratio, *engineSpeedup)
			}
		}
	}

	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Println(f)
		}
		fmt.Printf("benchdiff: %d regression(s) against %s\n", len(fails), *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d entries within tolerance of %s\n", len(base.Entries), *basePath)
}
