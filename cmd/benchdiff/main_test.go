package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"vliwvp/internal/exp"
)

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

func record(entries ...exp.BenchEntry) *exp.BenchRecord {
	return &exp.BenchRecord{
		Schema:    exp.BenchSchema,
		GoVersion: "go1.22.0",
		Machine:   "4-wide",
		Count:     5,
		Entries:   entries,
	}
}

func writeRecord(t *testing.T, dir, name string, rec *exp.BenchRecord) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := dir + "/" + name
	if err := writeFile(path, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	return path
}

// compare loads two records and replays the gating logic from main,
// returning the failure lines — keeps the test independent of os.Exit.
func compare(t *testing.T, basePath, newPath string, tol, wallTol float64) []string {
	t.Helper()
	base, err := load(basePath)
	if err != nil {
		t.Fatal(err)
	}
	now, err := load(newPath)
	if err != nil {
		t.Fatal(err)
	}
	var fails []string
	for _, be := range base.Entries {
		ne := now.Entry(be.Name)
		if ne == nil {
			fails = append(fails, be.Name+" missing")
			continue
		}
		for _, c := range []struct {
			metric    string
			base, now int64
			tol       float64
		}{
			{"cycles", be.Cycles, ne.Cycles, tol},
			{"allocs_per_op", be.AllocsPerOp, ne.AllocsPerOp, tol},
			{"wall_ns", be.WallNS, ne.WallNS, wallTol},
		} {
			if fail, _ := check(be.Name, c.metric, c.base, c.now, c.tol); fail != "" {
				fails = append(fails, fail)
			}
		}
	}
	return fails
}

func TestGatePassesIdenticalRecords(t *testing.T) {
	dir := t.TempDir()
	rec := record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, WallNS: 5e6, AllocsPerOp: 2000, BytesPerOp: 1 << 20},
		exp.BenchEntry{Name: "predict/stride", WallNS: 4e5, AllocsPerOp: 3, BytesPerOp: 64},
	)
	basePath := writeRecord(t, dir, "base.json", rec)
	newPath := writeRecord(t, dir, "new.json", rec)
	if fails := compare(t, basePath, newPath, 0.10, 0); len(fails) != 0 {
		t.Errorf("identical records failed the gate: %v", fails)
	}
}

// TestGateFailsOnSyntheticSlowdown is the acceptance check: a doctored
// record with +25% cycles and +50% allocations must fail a 10% gate.
func TestGateFailsOnSyntheticSlowdown(t *testing.T) {
	dir := t.TempDir()
	basePath := writeRecord(t, dir, "base.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, WallNS: 5e6, AllocsPerOp: 2000, BytesPerOp: 1 << 20},
	))
	newPath := writeRecord(t, dir, "new.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 125000, WallNS: 5e6, AllocsPerOp: 3000, BytesPerOp: 1 << 20},
	))
	fails := compare(t, basePath, newPath, 0.10, 0)
	if len(fails) != 2 {
		t.Fatalf("want 2 failures (cycles, allocs), got %d: %v", len(fails), fails)
	}
	joined := strings.Join(fails, "\n")
	if !strings.Contains(joined, "cycles") || !strings.Contains(joined, "allocs_per_op") {
		t.Errorf("failure lines do not name the regressed metrics: %v", fails)
	}
}

func TestGateIgnoresWallByDefaultButCanGateIt(t *testing.T) {
	dir := t.TempDir()
	basePath := writeRecord(t, dir, "base.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, WallNS: 5e6, AllocsPerOp: 2000},
	))
	newPath := writeRecord(t, dir, "new.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, WallNS: 50e6, AllocsPerOp: 2000},
	))
	if fails := compare(t, basePath, newPath, 0.10, 0); len(fails) != 0 {
		t.Errorf("10x wall slowdown failed the gate with wall-tol=0: %v", fails)
	}
	if fails := compare(t, basePath, newPath, 0.10, 0.5); len(fails) != 1 {
		t.Errorf("10x wall slowdown passed a 50%% wall gate: %v", fails)
	}
}

func TestGateFailsOnMissingEntry(t *testing.T) {
	dir := t.TempDir()
	basePath := writeRecord(t, dir, "base.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, AllocsPerOp: 2000},
		exp.BenchEntry{Name: "sim/li", Cycles: 90000, AllocsPerOp: 1800},
	))
	newPath := writeRecord(t, dir, "new.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, AllocsPerOp: 2000},
	))
	fails := compare(t, basePath, newPath, 0.10, 0)
	if len(fails) != 1 || !strings.Contains(fails[0], "sim/li") {
		t.Errorf("dropped entry not flagged: %v", fails)
	}
}

func TestGateAllowsImprovement(t *testing.T) {
	dir := t.TempDir()
	basePath := writeRecord(t, dir, "base.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 100000, AllocsPerOp: 2000},
	))
	newPath := writeRecord(t, dir, "new.json", record(
		exp.BenchEntry{Name: "sim/compress", Cycles: 50000, AllocsPerOp: 100},
	))
	if fails := compare(t, basePath, newPath, 0.10, 0); len(fails) != 0 {
		t.Errorf("improvement failed the gate: %v", fails)
	}
}

func TestLoadRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/bad.json"
	if err := writeFile(path, []byte(`{"schema":"other/v9","entries":[]}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Error("wrong schema accepted")
	}
}
