// Command vpexp regenerates the paper's evaluation artifacts (Tables 2-4,
// Figure 8, the baseline-recovery comparison, and the end-to-end dynamic
// speedup) from the pipeline in this repository. See DESIGN.md's
// per-experiment index.
//
// Usage:
//
//	vpexp -exp table2|table3|table4|fig8|baseline|speedup|all [-mach 4-wide]
//	vpexp -exp threshold|predictors|ccb|regions|hyperblocks|disambig|ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"vliwvp/internal/exp"
	"vliwvp/internal/machine"
)

func main() {
	which := flag.String("exp", "all", "experiment: table2, table3, table4, fig8, baseline, speedup, all, "+
		"or an ablation: threshold, predictors, ccb, regions, disambig, ablations")
	mach := flag.String("mach", "4-wide", "machine description for single-width experiments")
	flag.Parse()

	d := machine.ByName(*mach)
	if d == nil {
		fmt.Fprintf(os.Stderr, "vpexp: unknown machine %q\n", *mach)
		os.Exit(2)
	}
	r := exp.NewRunner(d)

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	runAblation := func(name string, f func(*machine.Desc) (fmt.Stringer, error)) {
		if *which != "ablations" && *which != name {
			return
		}
		t, err := f(d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t)
	}

	run("table2", func() error {
		t, _, err := exp.RenderTable2(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table3", func() error {
		t, _, err := exp.RenderTable3(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("fig8", func() error {
		t, _, err := exp.RenderFigure8(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table4", func() error {
		t, _, err := exp.RenderTable4()
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("baseline", func() error {
		t, _, err := exp.RenderBaseline(r, exp.DefaultICache)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("speedup", func() error {
		t, _, err := exp.RenderSpeedup(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})

	runAblation("threshold", func(d *machine.Desc) (fmt.Stringer, error) { return exp.RenderThresholdSweep(d) })
	runAblation("predictors", func(d *machine.Desc) (fmt.Stringer, error) { return exp.RenderPredictorAblation(d) })
	runAblation("ccb", func(d *machine.Desc) (fmt.Stringer, error) { return exp.RenderCCBSweep(d) })
	runAblation("regions", func(d *machine.Desc) (fmt.Stringer, error) { return exp.RenderRegionAblation(d) })
	runAblation("hyperblocks", func(d *machine.Desc) (fmt.Stringer, error) { return exp.RenderHyperblockMatrix(d) })
	runAblation("disambig", func(d *machine.Desc) (fmt.Stringer, error) { return exp.RenderDisambiguationAblation(d) })
}
