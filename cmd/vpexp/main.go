// Command vpexp regenerates the paper's evaluation artifacts (Tables 2-4,
// Figure 8, the baseline-recovery comparison, and the end-to-end dynamic
// speedup) from the pipeline in this repository. See DESIGN.md's
// per-experiment index.
//
// Usage:
//
//	vpexp -exp table2|table3|table4|fig8|baseline|speedup|all [-mach 4-wide] [-j N]
//	vpexp -exp threshold|predictors|ccb|regions|hyperblocks|disambig|ablations
//	vpexp -oracle [-mach 4-wide] [-j N]
//
// -j bounds the worker pool the experiment cells fan across; any value
// renders byte-identical tables. -oracle differentially tests the
// dual-engine simulator against the sequential interpreter over the full
// benchmark/configuration grid and exits nonzero on any divergence.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"vliwvp/internal/exp"
	"vliwvp/internal/machine"
	"vliwvp/internal/oracle"
	"vliwvp/internal/workload"
)

func main() {
	which := flag.String("exp", "all", "experiment: table2, table3, table4, fig8, baseline, speedup, all, "+
		"or an ablation: threshold, predictors, ccb, regions, disambig, ablations")
	mach := flag.String("mach", "4-wide", "machine description for single-width experiments")
	jobs := flag.Int("j", runtime.NumCPU(), "max concurrent experiment cells (tables are identical at any value)")
	oracleMode := flag.Bool("oracle", false, "differentially test the simulator against the interpreter and exit")
	flag.Parse()

	d := machine.ByName(*mach)
	if d == nil {
		fmt.Fprintf(os.Stderr, "vpexp: unknown machine %q\n", *mach)
		os.Exit(2)
	}

	if *oracleMode {
		runOracle(d, *jobs)
		return
	}

	r := exp.NewRunner(d)
	r.Jobs = *jobs

	matched := false
	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		matched = true
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	runAblation := func(name string, f func(*machine.Desc, int) (fmt.Stringer, error)) {
		if *which != "ablations" && *which != name {
			return
		}
		matched = true
		t, err := f(d, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t)
	}

	run("table2", func() error {
		t, _, err := exp.RenderTable2(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table3", func() error {
		t, _, err := exp.RenderTable3(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("fig8", func() error {
		t, _, err := exp.RenderFigure8(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table4", func() error {
		t, _, err := exp.RenderTable4(*jobs)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("baseline", func() error {
		t, _, err := exp.RenderBaseline(r, exp.DefaultICache)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("speedup", func() error {
		t, _, err := exp.RenderSpeedup(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})

	runAblation("threshold", exp2(exp.RenderThresholdSweep))
	runAblation("predictors", exp2(exp.RenderPredictorAblation))
	runAblation("ccb", exp2(exp.RenderCCBSweep))
	runAblation("regions", exp2(exp.RenderRegionAblation))
	runAblation("hyperblocks", exp2(exp.RenderHyperblockMatrix))
	runAblation("disambig", exp2(exp.RenderDisambiguationAblation))

	if !matched {
		fmt.Fprintf(os.Stderr, "vpexp: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// exp2 adapts a concrete table renderer to the runAblation signature.
func exp2[T fmt.Stringer](f func(*machine.Desc, int) (T, error)) func(*machine.Desc, int) (fmt.Stringer, error) {
	return func(d *machine.Desc, jobs int) (fmt.Stringer, error) { return f(d, jobs) }
}

// runOracle sweeps the standard differential-testing grid and reports one
// line per cell. Any divergence (or harness failure) exits nonzero.
func runOracle(d *machine.Desc, jobs int) {
	cells := oracle.StandardCells(workload.All(), []*machine.Desc{d})
	divs, err := oracle.CheckGrid(cells, jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpexp: oracle: %v\n", err)
		os.Exit(1)
	}
	bad := 0
	for i, cell := range cells {
		if divs[i] == nil {
			fmt.Printf("ok      %-14s %s\n", cell.Bench.Name, cell.Label)
			continue
		}
		bad++
		fmt.Printf("DIVERGE %-14s %s\n        %v\n", cell.Bench.Name, cell.Label, divs[i])
	}
	if bad > 0 {
		fmt.Printf("oracle: %d of %d cells diverged\n", bad, len(cells))
		os.Exit(1)
	}
	fmt.Printf("oracle: %d cells, no divergence\n", len(cells))
}
