// Command vpexp regenerates the paper's evaluation artifacts (Tables 2-4,
// Figure 8, the baseline-recovery comparison, and the end-to-end dynamic
// speedup) from the pipeline in this repository. See DESIGN.md's
// per-experiment index.
//
// Usage:
//
//	vpexp -exp table2|table3|table4|fig8|baseline|speedup|all [-mach 4-wide] [-j N]
//	vpexp -exp threshold|predictors|ccb|regions|hyperblocks|disambig|memory|combined|ablations
//	vpexp -oracle [-mach 4-wide] [-j N]
//	vpexp -sim compress [-cache l2-pf] [-predictor vtage:conf=2] [-branch tage] [-trace t.jsonl] [-stats-json m.json]
//	vpexp -bench-json BENCH.json [-bench-count 5]
//	vpexp -conform [-progen-seed 1] [-progen-count 200] [-j N]
//	vpexp -progen-seed 17 -progen-count 2
//	vpexp -batch 64 [-progen-seed 1] [-mach 4-wide] [-j N]
//
// -j bounds the worker pool the experiment cells fan across; any value
// renders byte-identical tables. -oracle differentially tests the
// dual-engine simulator against the sequential interpreter over the full
// benchmark/configuration grid and exits nonzero on any divergence.
//
// -conform runs the metamorphic conformance suite (internal/conform):
// -progen-count generated programs starting at -progen-seed, each checked
// across the configuration lattice, exiting nonzero with a minimized,
// seed-reproducible program for any violated invariant. Without -conform,
// -progen-count alone prints the generated VL programs, which is how a
// reported counterexample seed is inspected.
//
// -batch compiles a seed-reproducible progen corpus once (decoded images
// come from the pass cache) and executes every kernel through one batched
// simulator, reusing decode products, predictor tables, and pooled frames
// across the corpus; each kernel's result is validated against the
// sequential interpreter.
//
// -sim runs one benchmark on the speculative dual-engine machine and is
// the observability entry point: -trace streams the typed event log
// (-trace-format text, jsonl, or chrome — the last loads into
// chrome://tracing / Perfetto), and -stats-json writes the metrics
// snapshot (stall causes, CCB occupancy histogram, prediction and
// compensation counters). -bench-json runs the pinned benchmark grid and
// writes the perf record cmd/benchdiff gates CI with. -cpuprofile and
// -memprofile capture pprof profiles of whichever mode runs.
//
// -cache binds a stock memory hierarchy (internal/machine: flat, l1,
// l1-pf, l2, l2-pf) to every simulation this invocation runs. The
// hierarchy is timing-only — architectural results never change, cycle
// counts do. `-exp memory` sweeps all stock hierarchies in one table
// (the generalised Fig. 10 axis).
//
// -predictor binds a value-predictor configuration (internal/predict:
// profiled, auto, last, stride, fcm, hybrid, lnv, vtage, each accepting
// name:key=val options such as vtage:bits=12,conf=2) to every compilation
// and simulation this invocation runs; conf=N enables the runtime
// confidence gate. `-exp predictors` sweeps the whole zoo in one grid
// alongside the static profile-rescoping ablation.
//
// -branch binds a dynamic branch-direction predictor (internal/predict:
// taken, nottaken, bimodal, tage, with name:key=val options such as
// tage:hist=32,tables=4) to every simulation this invocation runs; taken
// branches then cost a fetch-redirect bubble and mispredicted directions
// pay the flush penalty and squash in-flight LdPred/CCB state (DESIGN.md
// §15). `-exp combined` crosses the branch-predictor axis against the
// value-predictor axis in one table — the unified control+value
// speculation ablation (E16).
//
// Three flags expose the compile pipeline itself: -passes prints the pass
// plans the current configuration composes (with each pass's cache-key
// fingerprint) and exits; -validate-ir checks the IR between every pass
// (structural passes are always checked; this extends the check to all of
// them, as `go test` does); -dump-ir DIR writes the IR after every pass to
// DIR, one file per (plan, pass), bypassing the pass cache so each dump
// reflects a full recompute.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"vliwvp/internal/conform"
	"vliwvp/internal/exp"
	"vliwvp/internal/ir"
	"vliwvp/internal/machine"
	"vliwvp/internal/obs"
	"vliwvp/internal/oracle"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/predict"
	"vliwvp/internal/progen"
	"vliwvp/internal/workload"
)

func main() {
	which := flag.String("exp", "all", "experiment: table2, table3, table4, fig8, baseline, speedup, all, "+
		"or an ablation: threshold, predictors, ccb, regions, disambig, memory, combined, ablations")
	mach := flag.String("mach", "4-wide", "machine description for single-width experiments")
	cacheName := flag.String("cache", "", "memory hierarchy for simulations: flat, l1, l1-pf, l2, l2-pf (default flat)")
	predSpec := flag.String("predictor", "", "value-predictor config for simulations: profiled, auto, last, stride, fcm, hybrid, lnv, vtage, with name:key=val options (e.g. vtage:bits=12,conf=2)")
	branchSpec := flag.String("branch", "", "branch-predictor config for simulations: taken, nottaken, bimodal, tage, with name:key=val options (e.g. tage:hist=32,tables=4)")
	jobs := flag.Int("j", runtime.NumCPU(), "max concurrent experiment cells (tables are identical at any value)")
	oracleMode := flag.Bool("oracle", false, "differentially test the simulator against the interpreter and exit")
	simBench := flag.String("sim", "", "run one benchmark on the speculative dual-engine machine (observability mode)")
	traceFile := flag.String("trace", "", "with -sim: write the event trace to this file ('-' for stdout)")
	traceFormat := flag.String("trace-format", "text", "trace encoding: text, jsonl, or chrome")
	statsJSON := flag.String("stats-json", "", "with -sim: write the metrics snapshot (counters + histograms) as JSON")
	benchJSON := flag.String("bench-json", "", "run the pinned benchmark grid and write the perf record here")
	benchCount := flag.Int("bench-count", 5, "with -bench-json: repetitions per entry (min is kept)")
	validateIR := flag.Bool("validate-ir", false, "validate the IR after every compile pass (always on under go test)")
	dumpIR := flag.String("dump-ir", "", "write the IR after every compile pass to this directory (disables the pass cache)")
	listPasses := flag.Bool("passes", false, "print the pass plans the current configuration composes and exit")
	conformMode := flag.Bool("conform", false, "run the metamorphic conformance suite over generated programs and exit")
	batchCount := flag.Int("batch", 0, "run N generated kernels (from -progen-seed) through one batched simulator and exit")
	progenSeed := flag.Int64("progen-seed", 1, "first program-generator seed for -conform (or for printing programs)")
	progenCount := flag.Int("progen-count", 0, "number of generated programs; default 200 under -conform")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	d := machine.ByName(*mach)
	if d == nil {
		fmt.Fprintf(os.Stderr, "vpexp: unknown machine %q\n", *mach)
		os.Exit(2)
	}
	memCfg := machine.MemByName(*cacheName)
	if memCfg == nil {
		fmt.Fprintf(os.Stderr, "vpexp: unknown cache %q (stock: flat, l1, l1-pf, l2, l2-pf)\n", *cacheName)
		os.Exit(2)
	}
	var predCfg *predict.Config
	if *predSpec != "" {
		var err error
		if predCfg, err = predict.Parse(*predSpec); err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: bad -predictor (stock: %s): %v\n",
				strings.Join(predict.StockNames(), ", "), err)
			os.Exit(2)
		}
	}
	var branchCfg *predict.BranchConfig
	if *branchSpec != "" {
		var err error
		if branchCfg, err = predict.ParseBranch(*branchSpec); err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: bad -branch (stock: %s): %v\n",
				strings.Join(predict.StockBranchNames(), ", "), err)
			os.Exit(2)
		}
	}

	// tune applies the pipeline-debugging flags, the memory hierarchy, and
	// the predictor config to every runner this invocation constructs.
	tune := func(r *exp.Runner) {
		r.Mem = memCfg
		r.Cfg.Predictor = predCfg
		if branchCfg != nil {
			r.Cfg.Control = machine.DefaultControl()
			r.Cfg.Control.Branch = branchCfg
		}
		r.ValidateIR = *validateIR
		if *dumpIR != "" {
			dump, err := irDumper(*dumpIR)
			if err != nil {
				fatal(err)
			}
			r.DumpIR = dump
		}
	}

	if *listPasses {
		printPlans(exp.NewRunner(d))
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	switch {
	case *conformMode:
		n := *progenCount
		if n <= 0 {
			n = 200
		}
		runConform(*progenSeed, n, *jobs)
		return
	case *batchCount > 0:
		if err := runBatch(d, tune, *progenSeed, *batchCount, *jobs); err != nil {
			fatal(err)
		}
		return
	case *progenCount > 0:
		for i := 0; i < *progenCount; i++ {
			fmt.Print(progen.Render(progen.Generate(*progenSeed+int64(i), progen.Options{})))
		}
		return
	case *oracleMode:
		runOracle(d, *jobs)
		return
	case *simBench != "":
		if err := runSim(d, tune, *simBench, *traceFile, *traceFormat, *statsJSON); err != nil {
			fatal(err)
		}
		return
	case *benchJSON != "":
		if err := runBench(d, *benchJSON, *benchCount); err != nil {
			fatal(err)
		}
		return
	}

	r := exp.NewRunner(d)
	r.Jobs = *jobs
	tune(r)

	matched := false
	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		matched = true
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
	runAblation := func(name string, f func(*machine.Desc, int) (fmt.Stringer, error)) {
		if *which != "ablations" && *which != name {
			return
		}
		matched = true
		t, err := f(d, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t)
	}

	run("table2", func() error {
		t, _, err := exp.RenderTable2(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table3", func() error {
		t, _, err := exp.RenderTable3(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("fig8", func() error {
		t, _, err := exp.RenderFigure8(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("table4", func() error {
		t, _, err := exp.RenderTable4(*jobs)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("baseline", func() error {
		t, _, err := exp.RenderBaseline(r, exp.DefaultICache)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})
	run("speedup", func() error {
		t, _, err := exp.RenderSpeedup(r)
		if err != nil {
			return err
		}
		fmt.Println(t)
		return nil
	})

	runAblation("threshold", exp2(exp.RenderThresholdSweep))
	// "predictors" renders both halves of the zoo comparison: the static
	// profile-rescoping ablation and the dynamic per-scheme grid.
	runAblation("predictors", func(d *machine.Desc, jobs int) (fmt.Stringer, error) {
		static, err := exp.RenderPredictorAblation(d, jobs)
		if err != nil {
			return nil, err
		}
		zoo, err := exp.RenderPredictorZoo(d, jobs)
		if err != nil {
			return nil, err
		}
		return stringers{static, zoo}, nil
	})
	runAblation("ccb", exp2(exp.RenderCCBSweep))
	runAblation("regions", exp2(exp.RenderRegionAblation))
	runAblation("hyperblocks", exp2(exp.RenderHyperblockMatrix))
	runAblation("disambig", exp2(exp.RenderDisambiguationAblation))
	runAblation("memory", exp2(exp.RenderMemLatAblation))
	runAblation("combined", exp2(exp.RenderCombined))

	if !matched {
		fmt.Fprintf(os.Stderr, "vpexp: unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vpexp: %v\n", err)
	os.Exit(1)
}

// exp2 adapts a concrete table renderer to the runAblation signature.
func exp2[T fmt.Stringer](f func(*machine.Desc, int) (T, error)) func(*machine.Desc, int) (fmt.Stringer, error) {
	return func(d *machine.Desc, jobs int) (fmt.Stringer, error) { return f(d, jobs) }
}

// stringers renders several tables as one blank-line-separated block, for
// experiments that print more than one table.
type stringers []fmt.Stringer

func (s stringers) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return strings.Join(parts, "\n\n")
}

// printPlans lists every pass plan the runner's configuration composes, in
// execution order, with each pass's cache-key fingerprint where it has one.
func printPlans(r *exp.Runner) {
	for _, pl := range r.Plans() {
		fmt.Printf("%s:\n", pl.Name)
		for i, p := range pl.Passes {
			if f, ok := p.(interface{ Fingerprint() string }); ok {
				fmt.Printf("  %2d %-10s %s\n", i, p.Name(), f.Fingerprint())
			} else {
				fmt.Printf("  %2d %s\n", i, p.Name())
			}
		}
	}
}

// irDumper builds a post-pass IR dump hook writing one file per (plan,
// pass) into dir. Attaching a dump hook bypasses the pass cache, so every
// dump reflects a full recompute of its plan.
func irDumper(dir string) (pipeline.DumpFunc, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return func(plan, pass string, index int, prog *ir.Program) {
		if prog == nil {
			return
		}
		name := fmt.Sprintf("%s-%02d-%s.ir", plan, index, pass)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(prog.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "vpexp: dump-ir: %v\n", err)
		}
	}, nil
}

// openSink builds the event sink for -trace/-trace-format. The returned
// close func flushes and finalizes the underlying file.
func openSink(path, format string) (obs.EventSink, func() error, error) {
	var w *os.File
	var err error
	closeFile := func() error { return nil }
	if path == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		closeFile = w.Close
	}
	switch format {
	case "text":
		s := obs.NewTextSink(w)
		return s, func() error {
			if err := s.Close(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	case "jsonl":
		s := obs.NewJSONLSink(w)
		return s, func() error {
			if err := s.Close(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	case "chrome":
		s := obs.NewChromeSink(w)
		return s, func() error {
			if err := s.Close(); err != nil {
				closeFile()
				return err
			}
			return closeFile()
		}, nil
	default:
		closeFile()
		return nil, nil, fmt.Errorf("unknown trace format %q (want text, jsonl, or chrome)", format)
	}
}

// runSim executes one benchmark on the speculative dual-engine machine
// with the requested observability attachments.
func runSim(d *machine.Desc, tune func(*exp.Runner), bench, traceFile, traceFormat, statsJSON string) error {
	w := workload.ByName(bench)
	if w == nil {
		return fmt.Errorf("unknown benchmark %q (have compress, ijpeg, li, m88ksim, vortex, hydro2d, swim, tomcatv)", bench)
	}
	r := exp.NewRunner(d)
	tune(r)
	sim, err := r.SpecSim(w)
	if err != nil {
		return err
	}
	if traceFile != "" {
		sink, closeSink, err := openSink(traceFile, traceFormat)
		if err != nil {
			return err
		}
		sim.Sink = sink
		defer func() {
			if err := closeSink(); err != nil {
				fmt.Fprintf(os.Stderr, "vpexp: closing trace: %v\n", err)
			}
		}()
	}
	v, err := sim.Run("main")
	if err != nil {
		return err
	}
	fmt.Printf("sim %s on %s: result=%d cycles=%d instrs=%d preds=%d mispred=%d cce=%d flush=%d\n",
		bench, d.Name, v, sim.Cycles, sim.Instrs,
		sim.Predictions, sim.Mispredicts, sim.CCEExecuted, sim.CCEFlushed)
	if sim.Control.Dynamic() {
		fmt.Printf("branch %s: predicts=%d mispred=%d flushed=%d stall-redirect=%d\n",
			sim.Control.Branch.Key(), sim.BranchPredicts, sim.BranchMispredicts,
			sim.BranchFlushed, sim.StallRedirect)
	}
	if !sim.MemCfg.Flat() {
		fmt.Printf("mem %s: dhits=%d dmisses=%d imisses=%d stall-ifetch=%d pf-issued=%d pf-useful=%d\n",
			sim.MemCfg.Name, sim.DHits, sim.DMisses, sim.IMisses,
			sim.StallIFetch, sim.PrefIssued, sim.PrefUseful)
	}
	if statsJSON != "" {
		f, err := os.Create(statsJSON)
		if err != nil {
			return err
		}
		snap := sim.Metrics()
		if err := snap.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

// runBatch compiles a generated corpus and executes it through one batched
// simulator, printing the per-kernel table.
func runBatch(d *machine.Desc, tune func(*exp.Runner), seed int64, n, jobs int) error {
	r := exp.NewRunner(d)
	r.Jobs = jobs
	tune(r)
	t, _, err := exp.RenderBatch(r, seed, n)
	if err != nil {
		return err
	}
	fmt.Println(t)
	return nil
}

// runBench measures the pinned benchmark grid and writes the perf record.
func runBench(d *machine.Desc, path string, count int) error {
	rec, err := exp.RunBenchGrid(d, count, os.Stderr)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := rec.WriteJSON(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runConform checks n generated programs (seeds seed..seed+n-1) against
// the metamorphic invariants across the configuration lattice and exits
// nonzero on any violation, printing each minimized counterexample.
func runConform(seed int64, n, jobs int) {
	fails, stats, err := conform.Run(seed, n, conform.Options{Jobs: jobs})
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpexp: conform: %v\n", err)
		os.Exit(1)
	}
	for _, f := range fails {
		fmt.Print(f.Report())
	}
	fmt.Printf("conform: %d programs x %d lattice cells, %d predictions (%d mispredicted), %d CCE re-executions, %d sweeps\n",
		stats.Programs, len(conform.DefaultLattice()), stats.Predictions,
		stats.Mispredicts, stats.CCEExecuted, stats.MonotoneSweeps)
	if len(fails) > 0 {
		fmt.Printf("conform: %d of %d seeds violated an invariant\n", len(fails), n)
		os.Exit(1)
	}
}

// runOracle sweeps the standard differential-testing grid and reports one
// line per cell. Any divergence (or harness failure) exits nonzero.
func runOracle(d *machine.Desc, jobs int) {
	cells := oracle.StandardCells(workload.All(), []*machine.Desc{d})
	divs, err := oracle.CheckGrid(cells, jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vpexp: oracle: %v\n", err)
		os.Exit(1)
	}
	bad := 0
	for i, cell := range cells {
		if divs[i] == nil {
			fmt.Printf("ok      %-14s %s\n", cell.Bench.Name, cell.Label)
			continue
		}
		bad++
		fmt.Printf("DIVERGE %-14s %s\n        %v\n", cell.Bench.Name, cell.Label, divs[i])
	}
	if bad > 0 {
		fmt.Printf("oracle: %d of %d cells diverged\n", bad, len(cells))
		os.Exit(1)
	}
	fmt.Printf("oracle: %d cells, no divergence\n", len(cells))
}
