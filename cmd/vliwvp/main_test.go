package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vliwvp/internal/workload"
)

// capture runs a subcommand with os.Stdout redirected and returns what
// it printed, failing the test if the command errors.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	cmdErr := fn()
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	if cmdErr != nil {
		t.Fatalf("command failed: %v\noutput:\n%s", cmdErr, out)
	}
	return string(out)
}

func TestCmdRunBench(t *testing.T) {
	out := capture(t, func() error { return cmdRun([]string{"-bench", "li"}) })
	if !strings.Contains(out, "result: 2118471") {
		t.Errorf("unexpected run output:\n%s", out)
	}
}

func TestCmdRunSourceFile(t *testing.T) {
	b := workload.ByName("li")
	if b == nil {
		t.Fatal("benchmark li missing")
	}
	path := filepath.Join(t.TempDir(), "li.vl")
	if err := os.WriteFile(path, []byte(b.Source), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error { return cmdRun([]string{path}) })
	if !strings.Contains(out, "result: 2118471") {
		t.Errorf("unexpected run output:\n%s", out)
	}
}

func TestCmdSimBranch(t *testing.T) {
	out := capture(t, func() error {
		return cmdSim([]string{"-bench", "li", "-spec", "-branch", "tage"})
	})
	// The simulated result must match the interpreter's, and binding a
	// dynamic branch predictor must surface its counter line.
	for _, want := range []string{
		"result: 2118471",
		"predictions:",
		"branch predictor (tage):",
		"redirect stalls",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sim output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdSimPlain(t *testing.T) {
	out := capture(t, func() error { return cmdSim([]string{"-bench", "li"}) })
	if !strings.Contains(out, "cycles:") {
		t.Errorf("sim output missing cycle line:\n%s", out)
	}
	if strings.Contains(out, "branch predictor") {
		t.Errorf("static control must not print branch counters:\n%s", out)
	}
}

func TestCmdSimCachePredictor(t *testing.T) {
	out := capture(t, func() error {
		return cmdSim([]string{"-bench", "li", "-spec", "-cache", "l1",
			"-predictor", "vtage:conf=2", "-ifconv", "-regions"})
	})
	if !strings.Contains(out, "memory (l1):") {
		t.Errorf("sim output missing memory line:\n%s", out)
	}
}

func TestCmdSimSerial(t *testing.T) {
	out := capture(t, func() error {
		return cmdSim([]string{"-bench", "li", "-serial"})
	})
	if !strings.Contains(out, "serial-recovery machine [4]:") {
		t.Errorf("sim output missing serial summary:\n%s", out)
	}
}

func TestCmdSimErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown machine", []string{"-mach", "7-wide", "-bench", "li"}, "unknown machine"},
		{"unknown cache", []string{"-cache", "bogus", "-bench", "li"}, "unknown cache"},
		{"bad predictor", []string{"-predictor", "bogus", "-bench", "li"}, "bad -predictor"},
		{"bad branch", []string{"-branch", "gshare", "-bench", "li"}, "bad -branch"},
		{"serial needs bench", []string{"-serial"}, "-serial requires -bench"},
		{"serial unknown bench", []string{"-serial", "-bench", "nope"}, "unknown benchmark"},
		{"no source", nil, "need exactly one source file"},
		{"missing file", []string{"no-such-file.vl"}, "no-such-file.vl"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := cmdSim(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("cmdSim(%q) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestCmdProfile(t *testing.T) {
	out := capture(t, func() error { return cmdProfile([]string{"-bench", "li"}) })
	if !strings.Contains(out, "stride") || !strings.Contains(out, "executions") {
		t.Errorf("profile output missing header:\n%s", out)
	}
}

func TestCmdCompile(t *testing.T) {
	out := capture(t, func() error {
		return cmdCompile([]string{"-bench", "li", "-sched"})
	})
	if !strings.Contains(out, "schedule") {
		t.Errorf("compile -sched output missing schedules:\n%s", out)
	}

	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"unknown bench", []string{"-bench", "nope"}, "unknown benchmark"},
		{"unknown machine", []string{"-bench", "li", "-sched", "-mach", "bogus"}, "unknown machine"},
		{"no source", nil, "need exactly one source file"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := cmdCompile(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("cmdCompile(%q) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestCmdBench(t *testing.T) {
	out := capture(t, func() error { return cmdBench([]string{"-list"}) })
	for _, want := range []string{"compress", "li", "m88ksim"} {
		if !strings.Contains(out, want) {
			t.Errorf("bench -list missing %q:\n%s", want, out)
		}
	}
	if err := cmdBench(nil); err == nil {
		t.Error("cmdBench with no flags should error")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if err := cmdRun([]string{"no-such-file.vl"}); err == nil {
		t.Error("cmdRun on a missing file should error")
	}
	if err := cmdRun(nil); err == nil {
		t.Error("cmdRun with no source should error")
	}
}
