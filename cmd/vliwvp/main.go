// Command vliwvp is the toolchain driver: it compiles VL programs, runs
// them on the sequential interpreter or the dual-engine VLIW simulator,
// prints value profiles, and dumps IR and schedules.
//
// Usage:
//
//	vliwvp run       [-bench name | file.vl]            sequential run
//	vliwvp compile   [-mach 4-wide] [-sched] [...]      dump IR (and schedules)
//	vliwvp profile   [...]                              load value profiles
//	vliwvp sim       [-mach 4-wide] [-spec] [...]       dual-engine simulation
//	vliwvp bench -list                                  list built-in benchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vliwvp"
	"vliwvp/internal/machine"
	"vliwvp/internal/pipeline"
	"vliwvp/internal/predict"
	"vliwvp/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "compile":
		err = cmdCompile(args)
	case "profile":
		err = cmdProfile(args)
	case "sim":
		err = cmdSim(args)
	case "bench":
		err = cmdBench(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vliwvp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vliwvp <run|compile|profile|sim|bench> [flags] [file.vl]
  run      execute a program on the sequential interpreter
  compile  dump optimized IR (and VLIW schedules with -sched)
  profile  print per-load value profiles (stride/FCM rates)
  sim      execute on the dual-engine VLIW machine (-spec enables prediction)
  bench    -list the built-in benchmark kernels
Programs come from a .vl source file or -bench <name>.`)
}

// loadProgram reads a program from -bench or a source file path.
func loadProgram(fs *flag.FlagSet, sys *vliwvp.System, args []string) (*vliwvp.Program, error) {
	bench := fs.String("bench", "", "built-in benchmark name instead of a source file")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if *bench != "" {
		return sys.CompileBenchmark(*bench)
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("need exactly one source file (or -bench name)")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return nil, err
	}
	return sys.Compile(string(src))
}

func sysFor(name string) (*vliwvp.System, error) {
	d := machine.ByName(name)
	if d == nil {
		return nil, fmt.Errorf("unknown machine %q (try 2-wide, 4-wide, 8-wide, 16-wide)", name)
	}
	return vliwvp.NewSystem(d.Width)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	sys, _ := vliwvp.NewSystem(4)
	prog, err := loadProgram(fs, sys, args)
	if err != nil {
		return err
	}
	res, err := prog.Interpret()
	if err != nil {
		return err
	}
	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("result: %d (%d dynamic operations)\n", int64(res.Value), res.DynOps)
	return nil
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ContinueOnError)
	mach := fs.String("mach", "4-wide", "machine description")
	dumpSched := fs.Bool("sched", false, "also dump VLIW schedules")
	bench := fs.String("bench", "", "built-in benchmark name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var src string
	if *bench != "" {
		b := workload.ByName(*bench)
		if b == nil {
			return fmt.Errorf("unknown benchmark %q", *bench)
		}
		src = b.Source
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("need exactly one source file (or -bench name)")
		}
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(data)
	}
	mgr := pipeline.NewManager()
	ctx := &pipeline.Ctx{Source: src}
	compilePlan := pipeline.Plan{Name: "compile", Passes: []pipeline.Pass{
		pipeline.Lower{}, pipeline.Opt{},
	}}
	if err := mgr.Run(compilePlan, ctx); err != nil {
		return err
	}
	p := ctx.Prog
	fmt.Print(p)
	if !*dumpSched {
		return nil
	}
	d := machine.ByName(*mach)
	if d == nil {
		return fmt.Errorf("unknown machine %q", *mach)
	}
	ctx.Machine = d
	schedPlan := pipeline.Plan{Name: "schedule", Passes: []pipeline.Pass{pipeline.Schedule{}}}
	if err := mgr.Run(schedPlan, ctx); err != nil {
		return err
	}
	for _, f := range p.Funcs {
		fsched := ctx.Sched.Funcs[f.Name]
		for i, b := range f.Blocks {
			s := fsched.Blocks[i]
			fmt.Printf("\nschedule %s b%d (%d cycles):\n", f.Name, b.ID, s.Length())
			for c, in := range s.Instrs {
				for _, op := range in.Ops {
					fmt.Printf("  c%-3d %v\n", c, op)
				}
			}
		}
	}
	return nil
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	sys, _ := vliwvp.NewSystem(4)
	prog, err := loadProgram(fs, sys, args)
	if err != nil {
		return err
	}
	prof, err := prog.Profile()
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %6s %12s %8s %8s %8s\n", "function", "op", "executions", "stride", "fcm", "max")
	for k, lp := range prof.Loads {
		fmt.Printf("%-16s %6d %12d %7.1f%% %7.1f%% %7.1f%%\n",
			k.Func, k.OpID, lp.Count, 100*lp.StrideRate, 100*lp.FCMRate, 100*lp.Rate())
	}
	return nil
}

func cmdSim(args []string) error {
	fs := flag.NewFlagSet("sim", flag.ContinueOnError)
	mach := fs.String("mach", "4-wide", "machine description")
	specOn := fs.Bool("spec", false, "enable value speculation")
	ifConv := fs.Bool("ifconv", false, "apply Select-based if-conversion before speculation")
	regionsOn := fs.Bool("regions", false, "apply superblock region formation before speculation")
	serial := fs.Bool("serial", false, "use the [4]-style serial-recovery machine (implies -spec, -bench only)")
	cache := fs.String("cache", "", "memory hierarchy: flat, l1, l1-pf, l2, l2-pf (default flat)")
	predSpec := fs.String("predictor", "", "value-predictor config: profiled, auto, last, stride, fcm, hybrid, lnv, vtage, with name:key=val options (e.g. vtage:bits=12,conf=2)")
	branchSpec := fs.String("branch", "", "branch-predictor config: taken, nottaken, bimodal, tage, with name:key=val options (e.g. tage:hist=32,tables=4)")
	bench := fs.String("bench", "", "built-in benchmark name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sys, err := sysFor(*mach)
	if err != nil {
		return err
	}
	sys.IfConvert = *ifConv
	sys.Regions = *regionsOn
	sys.Mem = machine.MemByName(*cache)
	if sys.Mem == nil {
		return fmt.Errorf("unknown cache %q (stock: flat, l1, l1-pf, l2, l2-pf)", *cache)
	}
	if *predSpec != "" {
		pc, err := predict.Parse(*predSpec)
		if err != nil {
			return fmt.Errorf("bad -predictor (stock: %s): %w", strings.Join(predict.StockNames(), ", "), err)
		}
		sys.Config.Predictor = pc
	}
	if *branchSpec != "" {
		bc, err := predict.ParseBranch(*branchSpec)
		if err != nil {
			return fmt.Errorf("bad -branch (stock: %s): %w", strings.Join(predict.StockBranchNames(), ", "), err)
		}
		sys.Config.Control = machine.DefaultControl()
		sys.Config.Control.Branch = bc
	}
	if *serial {
		if *bench == "" {
			return fmt.Errorf("-serial requires -bench <name>")
		}
		b := workload.ByName(*bench)
		if b == nil {
			return fmt.Errorf("unknown benchmark %q", *bench)
		}
		r := sys.Experiments()
		row, err := r.SpeedupSerial(b)
		if err != nil {
			return err
		}
		fmt.Printf("serial-recovery machine [4]: %d cycles"+"\n", row.SpecCycles)
		fmt.Printf("predictions: %d  mispredicts (serial recoveries): %d"+"\n", row.Predictions, row.Mispredicts)
		return nil
	}
	var prog *vliwvp.Program
	if *bench != "" {
		prog, err = sys.CompileBenchmark(*bench)
	} else {
		if fs.NArg() != 1 {
			return fmt.Errorf("need exactly one source file (or -bench name)")
		}
		var data []byte
		data, err = os.ReadFile(fs.Arg(0))
		if err == nil {
			prog, err = sys.Compile(string(data))
		}
	}
	if err != nil {
		return err
	}

	var res *vliwvp.SimResult
	if *specOn {
		prof, err := prog.Profile()
		if err != nil {
			return err
		}
		sp, err := prog.Speculate(prof)
		if err != nil {
			return err
		}
		fmt.Printf("%d prediction sites selected\n", len(sp.Sites()))
		res, err = sp.Simulate()
		if err != nil {
			return err
		}
	} else {
		res, err = prog.Simulate()
		if err != nil {
			return err
		}
	}
	for _, line := range res.Output {
		fmt.Println(line)
	}
	fmt.Printf("result: %d\n", int64(res.Value))
	fmt.Printf("cycles: %d  instructions: %d  operations: %d\n", res.Cycles, res.Instrs, res.Ops)
	if res.Predictions > 0 {
		fmt.Printf("predictions: %d  mispredicts: %d  CCE executed: %d  flushed: %d  sync stalls: %d\n",
			res.Predictions, res.Mispredicts, res.CCEExecuted, res.CCEFlushed, res.StallSync)
		fmt.Printf("peak CCB occupancy: %d entries\n", res.MaxCCBOccupancy)
	}
	if res.Suppressed > 0 {
		fmt.Printf("confidence gate: %d suppressed (%d would have been wrong)\n",
			res.Suppressed, res.SuppressedWrong)
	}
	if res.BranchPredicts > 0 {
		fmt.Printf("branch predictor (%s): %d lookups  %d mispredicts  %d in-flight flushes  %d redirect stalls\n",
			sys.Config.Control.Branch.Key(), res.BranchPredicts, res.BranchMispredicts,
			res.BranchFlushed, res.StallRedirect)
	}
	if !sys.Mem.Flat() {
		fmt.Printf("memory (%s): D-misses: %d  I-misses: %d  fetch stalls: %d  prefetches: %d (%d useful)\n",
			sys.Mem.Name, res.DMisses, res.IMisses, res.StallIFetch, res.PrefIssued, res.PrefUseful)
	}
	return nil
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list built-in benchmarks")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-10s %-15s %s\n", b.Name, b.Suite, b.Description)
		}
		return nil
	}
	return fmt.Errorf("bench: only -list is supported; use run/sim -bench <name> to execute one")
}
