package vliwvp_test

import (
	"testing"

	"vliwvp"
)

const facadeSrc = `
var a[256]
func main() {
	for var i = 0; i < 256; i = i + 1 { a[i] = i * 4 }
	var s = 0
	for var i = 0; i < 256; i = i + 1 {
		var x = a[i]
		s = s + x * 3 - (x >> 1)
	}
	print(s)
	return s
}`

func TestFacadePipeline(t *testing.T) {
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := sys.Compile(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := prog.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	prof, err := prog.Profile()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := prog.Speculate(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Sites()) == 0 {
		t.Fatal("no prediction sites selected")
	}
	base, err := prog.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := spec.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if base.Value != golden.Value || fast.Value != golden.Value {
		t.Errorf("values diverge: golden %d, base %d, fast %d", golden.Value, base.Value, fast.Value)
	}
	if len(fast.Output) != 1 || fast.Output[0] != golden.Output[0] {
		t.Errorf("output diverges: %v vs %v", fast.Output, golden.Output)
	}
	if fast.Cycles >= base.Cycles {
		t.Errorf("speculated %d cycles, baseline %d — expected speedup", fast.Cycles, base.Cycles)
	}
	if fast.Predictions == 0 {
		t.Error("no dynamic predictions")
	}
}

func TestNewSystemRejectsUnknownWidth(t *testing.T) {
	if _, err := vliwvp.NewSystem(7); err == nil {
		t.Error("accepted 7-wide")
	}
}

func TestCompileBenchmark(t *testing.T) {
	sys, err := vliwvp.NewSystem(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.CompileBenchmark("nope"); err == nil {
		t.Error("accepted unknown benchmark")
	}
	prog, err := sys.CompileBenchmark("compress")
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Interpret()
	if err != nil {
		t.Fatal(err)
	}
	if res.DynOps == 0 {
		t.Error("benchmark did no work")
	}
}

func TestBenchmarksExposed(t *testing.T) {
	if len(vliwvp.Benchmarks()) != 8 {
		t.Errorf("want 8 benchmarks, got %d", len(vliwvp.Benchmarks()))
	}
	if vliwvp.MachineDesc("8-wide") == nil {
		t.Error("MachineDesc(8-wide) missing")
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	sys, _ := vliwvp.NewSystem(4)
	if _, err := sys.Compile(`func main() { return undefined_var }`); err == nil {
		t.Error("compile error swallowed")
	}
}
