package vliwvp_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"vliwvp"
)

// TestSampleProgramsRunIdenticallyOnAllEngines compiles every .vl sample in
// examples/vl and checks that the interpreter, the plain VLIW machine, the
// speculated dual-engine machine, and the hyperblock pipeline all agree on
// result and output.
func TestSampleProgramsRunIdenticallyOnAllEngines(t *testing.T) {
	paths, err := filepath.Glob("examples/vl/*.vl")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 3 {
		t.Fatalf("expected at least 3 sample programs, found %d", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for _, hyper := range []bool{false, true} {
				sys, err := vliwvp.NewSystem(4)
				if err != nil {
					t.Fatal(err)
				}
				sys.IfConvert = hyper
				sys.Regions = hyper
				prog, err := sys.Compile(string(src))
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				golden, err := prog.Interpret()
				if err != nil {
					t.Fatalf("interpret: %v", err)
				}
				base, err := prog.Simulate()
				if err != nil {
					t.Fatalf("simulate: %v", err)
				}
				prof, err := prog.Profile()
				if err != nil {
					t.Fatal(err)
				}
				spec, err := prog.Speculate(prof)
				if err != nil {
					t.Fatal(err)
				}
				fast, err := spec.Simulate()
				if err != nil {
					t.Fatalf("speculated simulate: %v", err)
				}
				if base.Value != golden.Value || fast.Value != golden.Value {
					t.Errorf("hyper=%v: values diverge: golden %d, base %d, fast %d",
						hyper, golden.Value, base.Value, fast.Value)
				}
				if strings.Join(fast.Output, "|") != strings.Join(golden.Output, "|") {
					t.Errorf("hyper=%v: output diverges: %v vs %v", hyper, fast.Output, golden.Output)
				}
				if fast.Cycles > base.Cycles {
					t.Logf("hyper=%v %s: speculated %d cycles vs base %d (no gain on this sample)",
						hyper, path, fast.Cycles, base.Cycles)
				}
			}
		})
	}
}
